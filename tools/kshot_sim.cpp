// kshot-sim — command-line driver for the KShot simulation.
//
//   kshot-sim list                         table of all CVE benchmark cases
//   kshot-sim patch <CVE-ID> [flags]       run the live-patch scenario
//       --rootkit      load the reversion rootkit first
//       --watchdog     arm the periodic-SMI introspection watchdog
//       --guard        arm the kernel-text guard
//       --kpatch       use the kpatch baseline instead of KShot
//   kshot-sim fleet <CVE-ID> [flags]       staged rollout across N targets
//       --targets N    fleet size (default 8)
//       --canary K     canary wave size (default 1)
//       --wave W       size of later waves (default 4)
//       --abort-rate R abort threshold on a wave's failure fraction
//       --drop R / --corrupt R   channel fault rates on every target
//   kshot-sim lifecycle                    scripted patch-stack smoke
//       apply -> depend -> supersede -> query -> out-of-order revert ->
//       in-place splice; output is canonical (byte-identical across
//       --jobs), so CI can cmp two runs
//   kshot-sim disasm <CVE-ID> <function>   disassemble a kernel function
//   kshot-sim package <CVE-ID>             show the built patch set / wire
//
//   kshot-sim single [CVE-ID]              `patch` with a default case
//
//   kshot-sim synth [flags]                auto-CVE campaign (DESIGN.md §14)
//       --cases N      synthesized cases (default 200), classes cycled
//       --classes CSV  bug classes to cycle (OOB, CHK, DSP)
//       --live K       also live-patch the first K cases end to end
//       every case must pass the probe contract, the evaluator-vs-machine
//       differential (two optimizer configs), and diff confinement; the
//       report is byte-identical across --jobs
//
//   kshot-sim fuzz [flags]                 invariant-oracle fuzzing (DESIGN.md §9)
//       --surface S    package | netsim | kcc | attacker_schedule | synth
//                      | all (default package)
//       --iters N      generated cases per surface (default 200)
//       --time-budget T  wall-clock cap in seconds (0 = off; breaks
//                      run-to-run case-count determinism)
//       --corpus DIR   replay a regression corpus instead of generating
//       --write-corpus DIR   write the canonical seed corpus and exit
//       --replay FILE  re-execute one corpus file (needs --surface)
//       --selftest     re-open the fixed seams (wrapping bounds, TOCTOU
//                      double fetch, mis-planted synth guard) and prove
//                      the oracles catch all three
//
//   kshot-sim attack [flags]               seeded async-adversary campaign
//       --schedule-seed S  base seed for the schedule generator
//       --variants N       schedule variants to run (default 200)
//       every variant must be prevented (memory byte-identical to the
//       no-attack run) or detected (classified DetectionReport); any
//       silent corruption / silent failure exits nonzero
//
// Shared flags (all modes):
//   --seed S         deterministic seed (testbed RNG / fleet base seed)
//   --jobs J         parallelism: fleet worker pool; workload threads for
//                    `patch`
//   --cpus N         simulated CPUs per target (default 1; >1 engages the
//                    multi-CPU SMI rendezvous model; 0 exits 2)
//   --trace-out F    write a Chrome-trace JSON (chrome://tracing, Perfetto)
//                    of the run's pipeline spans to F
//   --metrics        dump the pipeline metrics snapshot to stdout
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attacks/async_adversary.hpp"
#include "attacks/rootkits.hpp"
#include "baselines/kpatch_sim.hpp"
#include "benchkit/benchkit.hpp"
#include "common/hex.hpp"
#include "cve/synth.hpp"
#include "fleet/fleet.hpp"
#include "fleetscale/fleetscale.hpp"
#include "fuzz/fuzz.hpp"
#include "isa/disasm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "patchtool/package.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

/// Flags shared by every mode; value flags are consumed as `--name value`.
struct CommonFlags {
  u64 seed = 0x5EED;
  u32 jobs = 1;
  u32 cpus = 1;  // --cpus N: simulated CPUs per target (>= 1, strict)
  std::string trace_out;  // --trace-out FILE: Chrome-trace JSON destination
  bool metrics = false;   // --metrics: dump the metrics snapshot on exit
};

void usage();

int write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return 0;
}

int cmd_list() {
  std::printf("%-16s %-9s %4s %-5s %s\n", "CVE", "kernel", "LoC", "types",
              "affected functions");
  for (const auto& c : cve::all_cases()) {
    std::string fns;
    for (size_t i = 0; i < c.functions.size(); ++i) {
      if (i) fns += ", ";
      fns += c.functions[i];
    }
    std::printf("%-16s %-9s %4d %-5s %s\n", c.id.c_str(), c.kernel.c_str(),
                c.patch_loc, c.types.c_str(), fns.c_str());
  }
  return 0;
}

/// Table ids resolve as-is; "SYNTH-<TAG>-<seed>" ids are regenerated on the
/// fly (cve::resolve_case), so every single-case command accepts both.
Result<cve::CveCase> resolve_or_report(const std::string& id) {
  auto resolved = cve::resolve_case(id);
  if (!resolved.is_ok()) {
    std::fprintf(stderr, "%s\n", resolved.status().to_string().c_str());
  }
  return resolved;
}

int cmd_exploit(const std::string& id, const CommonFlags& common) {
  auto rc = resolve_or_report(id);
  if (!rc.is_ok()) return 1;
  const cve::CveCase& c = *rc;
  auto tb = testbed::Testbed::boot(c, {.seed = common.seed});
  if (!tb.is_ok()) {
    std::fprintf(stderr, "boot failed: %s\n", tb.status().to_string().c_str());
    return 1;
  }
  auto e = (*tb)->run_exploit();
  if (!e.is_ok()) {
    std::fprintf(stderr, "%s\n", e.status().to_string().c_str());
    return 1;
  }
  std::printf("syscall(%d, 0x%llx) -> %s\n", c.syscall_nr,
              static_cast<unsigned long long>(c.exploit_args[0]),
              e->oops ? "KERNEL OOPS" : "no oops");
  return 0;
}

int cmd_patch(const std::string& id, const CommonFlags& common, bool rootkit,
              bool watchdog, bool guard, bool use_kpatch) {
  auto rc = resolve_or_report(id);
  if (!rc.is_ok()) return 1;
  const cve::CveCase& c = *rc;
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  testbed::TestbedOptions opts;
  opts.seed = common.seed;
  opts.cpus = common.cpus;
  opts.workload_threads = static_cast<int>(std::max<u32>(2, common.jobs));
  if (watchdog) opts.watchdog_interval_cycles = 50'000;
  if (!common.trace_out.empty()) opts.trace = &trace;
  opts.metrics = &metrics;
  auto tb = testbed::Testbed::boot(c, opts);
  if (!tb.is_ok()) {
    std::fprintf(stderr, "boot failed: %s\n", tb.status().to_string().c_str());
    return 1;
  }
  testbed::Testbed& t = **tb;
  if (guard && !t.kshot().arm_kernel_guard().is_ok()) {
    std::fprintf(stderr, "guard arming failed\n");
    return 1;
  }
  if (rootkit) {
    t.kernel().insmod(
        std::make_shared<attacks::ReversionRootkit>(t.pre_image()));
    std::printf("[attack] reversion rootkit resident\n");
  }

  auto pre = t.run_exploit();
  std::printf("exploit before: %s\n",
              pre.is_ok() && pre->oops ? "fires" : "no effect");

  if (use_kpatch) {
    baselines::KpatchSim kpatch(t.kernel(), t.scheduler());
    auto set = t.server().build_patchset(c.id, t.kernel().os_info());
    if (!set.is_ok()) {
      std::fprintf(stderr, "%s\n", set.status().to_string().c_str());
      return 1;
    }
    auto rep = kpatch.apply(*set);
    std::printf("kpatch: %s\n", rep.is_ok() && rep->success
                                    ? "applied"
                                    : rep->detail.c_str());
  } else {
    auto rep = t.kshot().live_patch(c.id);
    if (!rep.is_ok() || !rep->success) {
      std::fprintf(stderr, "live patch failed\n");
      return 1;
    }
    std::printf(
        "kshot: %u fn / %u bytes; SGX %.1fus; OS paused %.1fus (modeled)\n",
        rep->stats.functions, rep->stats.code_bytes, rep->sgx.total_us(),
        rep->smm.modeled_total_us);
  }

  t.scheduler().run(1000, 64);  // let attackers/watchdog act
  // Operator verification sweep (the remote server's final check): without
  // it, checking at an arbitrary instant races the rootkit's last tick.
  if (!use_kpatch) t.kshot().introspect();

  auto post = t.run_exploit();
  std::printf("exploit after (post attack window): %s\n",
              post.is_ok() && post->oops ? "STILL FIRES" : "dead");

  if (!common.trace_out.empty()) {
    if (write_file(common.trace_out,
                   obs::to_chrome_trace(trace.snapshot())) != 0) {
      return 1;
    }
    std::printf("trace: %zu events -> %s\n", trace.size(),
                common.trace_out.c_str());
  }
  if (common.metrics) {
    std::fputs(metrics.snapshot().to_string().c_str(), stdout);
  }
  return post.is_ok() && !post->oops ? 0 : 1;
}

int cmd_disasm(const std::string& id, const std::string& fn) {
  auto rc = resolve_or_report(id);
  if (!rc.is_ok()) return 1;
  const cve::CveCase& c = *rc;
  auto tb = testbed::Testbed::boot(c, {.install_kshot = false});
  if (!tb.is_ok()) return 1;
  const auto& img = (*tb)->kernel().image();
  const kcc::Symbol* sym = img.find_symbol(fn);
  if (sym == nullptr) {
    std::fprintf(stderr, "no such function; available:\n");
    for (const auto& s : img.symbols) {
      std::fprintf(stderr, "  %s\n", s.name.c_str());
    }
    return 1;
  }
  auto body = img.function_bytes(fn);
  std::printf("%s @ 0x%llx (%u bytes%s)\n%s", fn.c_str(),
              static_cast<unsigned long long>(sym->addr), sym->size,
              sym->traced ? ", traced" : "",
              isa::disassemble(*body, sym->addr).c_str());
  return 0;
}

int cmd_package(const std::string& id) {
  auto rc = resolve_or_report(id);
  if (!rc.is_ok()) return 1;
  const cve::CveCase& c = *rc;
  auto tb = testbed::Testbed::boot(c, {.install_kshot = false});
  if (!tb.is_ok()) return 1;
  auto set = (*tb)->server().build_patchset(id, (*tb)->kernel().os_info());
  if (!set.is_ok()) {
    std::fprintf(stderr, "%s\n", set.status().to_string().c_str());
    return 1;
  }
  std::printf("patch set %s (kernel %s): %zu function(s)\n",
              set->id.c_str(), set->kernel_version.c_str(),
              set->patches.size());
  for (const auto& p : set->patches) {
    std::printf(
        "  [%u] %-36s type %d  taddr=0x%llx  %zuB code, %zu relocs, %zu var "
        "edits%s\n",
        p.sequence, p.name.c_str(), static_cast<int>(p.type),
        static_cast<unsigned long long>(p.taddr), p.code.size(),
        p.relocs.size(), p.var_edits.size(),
        p.ftrace_off ? "  (ftrace pad)" : "");
  }
  Bytes wire = patchtool::serialize_patchset(*set, patchtool::PatchOp::kPatch);
  std::printf("wire package: %zu bytes; first 64:\n%s", wire.size(),
              hexdump(ByteSpan(wire).subspan(
                          0, std::min<size_t>(64, wire.size())))
                  .c_str());
  return 0;
}

std::vector<std::string> split_ids(const std::string& csv) {
  std::vector<std::string> ids;
  std::string cur;
  for (char ch : csv) {
    if (ch == ',') {
      if (!cur.empty()) ids.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) ids.push_back(cur);
  return ids;
}

/// `single --batch A,B,C`: one merged deployment, one batched SMM session
/// installing every package, then a per-CVE exploit sweep.
int cmd_single_batch(const std::string& csv, const CommonFlags& common) {
  std::vector<std::string> ids = split_ids(csv);
  auto batch = cve::combine_cases(ids);
  if (!batch.is_ok()) {
    std::fprintf(stderr, "%s\n", batch.status().to_string().c_str());
    return 1;
  }
  auto parts = cve::batch_part_cases(ids);
  if (!parts.is_ok()) {
    std::fprintf(stderr, "%s\n", parts.status().to_string().c_str());
    return 1;
  }
  auto tb = testbed::Testbed::boot(batch->merged,
                                   {.seed = common.seed, .cpus = common.cpus});
  if (!tb.is_ok()) {
    std::fprintf(stderr, "boot failed: %s\n", tb.status().to_string().c_str());
    return 1;
  }
  testbed::Testbed& t = **tb;
  for (const auto& p : *parts) {
    t.server().add_patch({p.id, p.kernel, p.pre_source, p.post_source});
    if (!t.kernel().register_syscall(p.syscall_nr, p.entry_function).is_ok()) {
      std::fprintf(stderr, "cannot wire %s's syscall\n", p.id.c_str());
      return 1;
    }
  }

  auto rep = t.kshot().live_patch_batch(ids);
  if (!rep.is_ok() || !rep->success) {
    std::fprintf(stderr, "batched live patch failed: %s\n",
                 rep.is_ok() ? core::smm_status_name(rep->smm_status)
                             : rep.status().to_string().c_str());
    return 1;
  }
  std::printf(
      "kshot batch of %zu: %u fn / %u bytes in ONE session; SGX %.1fus; OS "
      "paused %.1fus (modeled)\n",
      ids.size(), rep->stats.functions, rep->stats.code_bytes,
      rep->sgx.total_us(), rep->smm.modeled_total_us);

  bool all_dead = true;
  for (const auto& p : *parts) {
    auto e = t.run_syscall(p.syscall_nr, p.exploit_args);
    bool dead = e.is_ok() && !e->oops;
    all_dead = all_dead && dead;
    std::printf("  %-16s exploit: %s\n", p.id.c_str(),
                dead ? "dead" : "STILL FIRES");
  }
  return all_dead ? 0 : 1;
}

/// `lifecycle`: scripted patch-stack smoke walking the full SMM lifecycle —
/// apply a base set, stack a dependent on top, refuse a missing dependency,
/// supersede the base, query the inventory, revert out of order (blocked,
/// then unblocked), and finish with an in-place splice leg. Every printed
/// line is canonical: byte-identical across --jobs and repeated runs, so CI
/// can cmp two invocations.
int cmd_lifecycle(const CommonFlags& common) {
  const std::string id_a = "CVE-2016-2543";   // base set
  const std::string id_b = "CVE-2016-4578";   // depends on A
  const std::string id_c = "CVE-2016-4580";   // supersedes A
  const std::vector<std::string> ids = {id_a, id_b, id_c};
  auto batch = cve::combine_cases(ids);
  auto parts = cve::batch_part_cases(ids);
  if (!batch.is_ok() || !parts.is_ok()) {
    std::fprintf(stderr, "cannot build merged lifecycle kernel\n");
    return 1;
  }
  testbed::TestbedOptions topts;
  topts.seed = common.seed;
  topts.cpus = common.cpus;
  topts.workload_threads = static_cast<int>(common.jobs) - 1;
  auto tb = testbed::Testbed::boot(batch->merged, topts);
  if (!tb.is_ok()) {
    std::fprintf(stderr, "boot failed: %s\n", tb.status().to_string().c_str());
    return 1;
  }
  testbed::Testbed& t = **tb;
  for (const auto& p : *parts) {
    t.server().add_patch({p.id, p.kernel, p.pre_source, p.post_source});
    if (!t.kernel().register_syscall(p.syscall_nr, p.entry_function).is_ok()) {
      std::fprintf(stderr, "cannot wire %s's syscall\n", p.id.c_str());
      return 1;
    }
  }

  bool all_ok = true;
  auto step = [&](const char* what, const Result<core::PatchReport>& rep,
                  core::SmmStatus want) {
    const char* got = rep.is_ok() ? core::smm_status_name(rep->smm_status)
                                  : "transport-error";
    bool match = rep.is_ok() && rep->smm_status == want;
    all_ok = all_ok && match;
    std::printf("%-44s %s%s\n", what, got, match ? "" : "  [UNEXPECTED]");
  };
  auto probe = [&](const char* what, const cve::CveCase& c, bool want_oops) {
    auto e = t.run_syscall(c.syscall_nr, c.exploit_args);
    bool oops = e.is_ok() && e->oops;
    all_ok = all_ok && e.is_ok() && oops == want_oops;
    std::printf("%-44s %s%s\n", what, oops ? "fires" : "dead",
                oops == want_oops ? "" : "  [UNEXPECTED]");
  };
  auto inventory = [&]() {
    auto inv = t.kshot().query_applied();
    if (!inv.is_ok()) {
      all_ok = false;
      std::printf("inventory: query failed\n");
      return;
    }
    std::printf("inventory: %zu unit(s), mem_X used=%llu extents=%zu\n",
                inv->units.size(),
                static_cast<unsigned long long>(inv->memx_used),
                inv->extents.size());
    for (const auto& u : inv->units) {
      std::printf("  seq=%llu %-16s fn=%u code=%uB spliced=%u\n",
                  static_cast<unsigned long long>(u.seq), u.id.c_str(),
                  u.functions, u.code_bytes, u.spliced);
    }
  };

  probe("exploit A before patching:", (*parts)[0], /*want_oops=*/true);
  step("apply A:", t.kshot().live_patch(id_a), core::SmmStatus::kOk);
  probe("exploit A after apply:", (*parts)[0], /*want_oops=*/false);
  core::LifecycleOptions dep_b;
  dep_b.depends = {id_a};
  step("apply B (depends A):", t.kshot().live_patch(id_b, dep_b),
       core::SmmStatus::kOk);
  // The dependency fence refuses unapplied prerequisites in SMM; the failed
  // apply must unwind cleanly (no mem_X leak, no stack entry).
  core::LifecycleOptions dep_missing;
  dep_missing.depends = {"CVE-0000-0000"};
  step("apply C (depends on unapplied id):",
       t.kshot().live_patch(id_c, dep_missing),
       core::SmmStatus::kMissingDependency);
  core::LifecycleOptions sup_a;
  sup_a.supersedes = {id_a};
  step("apply C (supersedes A):", t.kshot().live_patch(id_c, sup_a),
       core::SmmStatus::kOk);
  // Superseding retires A's text effects, so its exploit fires again; B's
  // dependency stays satisfied because C inherited A's provides.
  probe("exploit A after supersede (fix retired):", (*parts)[0],
        /*want_oops=*/true);
  inventory();
  step("revert C (B depends on its provides):", t.kshot().revert_patch(id_c),
       core::SmmStatus::kRevertBlocked);
  step("revert B (out of order):", t.kshot().revert_patch(id_b),
       core::SmmStatus::kOk);
  step("revert C:", t.kshot().revert_patch(id_c), core::SmmStatus::kOk);
  step("revert A (already superseded):", t.kshot().revert_patch(id_a),
       core::SmmStatus::kNothingToRollback);
  inventory();

  // Splice leg: a size-neutral fix applied in place — no mem_X slot, no
  // trampoline — then reverted, leaving occupancy at zero.
  auto sc = testbed::make_splice_sweep_case(256);
  testbed::TestbedOptions sopts;
  sopts.seed = common.seed;
  auto stb = testbed::Testbed::boot(sc, sopts);
  if (!stb.is_ok()) {
    std::fprintf(stderr, "splice leg boot failed\n");
    return 1;
  }
  core::LifecycleOptions splice;
  splice.allow_splice = true;
  auto srep = (*stb)->kshot().live_patch(sc.id, splice);
  bool sok = srep.is_ok() && srep->success;
  auto sinv = (*stb)->kshot().query_applied();
  u32 spliced = sinv.is_ok() && sinv->units.size() == 1
                    ? sinv->units[0].spliced
                    : 0;
  u64 sused = sinv.is_ok() ? sinv->memx_used : ~0ull;
  bool sleg = sok && spliced == 1 && sused == 0;
  all_ok = all_ok && sleg;
  std::printf("%-44s %s%s\n", "splice leg (in place, mem_X untouched):",
              sleg ? "spliced" : "not spliced", sleg ? "" : "  [UNEXPECTED]");
  step("revert splice:", (*stb)->kshot().revert_patch(sc.id),
       core::SmmStatus::kOk);

  std::printf("lifecycle: %s\n", all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}

/// `bench`: deterministic modeled-cost harness + optional regression gate.
int cmd_bench(const CommonFlags& common, bool quick,
              const std::string& out_dir, const std::string& gate_dir,
              double gate_tol, double cost_scale) {
  benchkit::BenchOptions bo;
  bo.seed = common.seed;
  bo.jobs = common.jobs;
  bo.quick = quick;
  bo.cost_scale = cost_scale;
  auto res = benchkit::run_bench(bo);
  if (!res.is_ok()) {
    std::fprintf(stderr, "bench failed: %s\n",
                 res.status().to_string().c_str());
    return 1;
  }

  std::string dir = out_dir.empty() ? "." : out_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  struct Doc {
    const char* file;
    const std::string* body;
    bool gated;
  };
  const Doc docs[] = {
      {"BENCH_table3.json", &res->table3_json, true},
      {"BENCH_table4.json", &res->table4_json, true},
      {"BENCH_table3_wall.json", &res->table3_wall_json, false},
      {"BENCH_table4_wall.json", &res->table4_wall_json, false},
  };
  for (const Doc& d : docs) {
    std::string path = dir + "/" + d.file;
    if (write_file(path, *d.body) != 0) return 1;
    std::printf("bench: wrote %s (%zu bytes)%s\n", path.c_str(),
                d.body->size(), d.gated ? "" : "  [wall sidecar, not gated]");
  }

  if (gate_dir.empty()) return 0;
  bool gate_ok = true;
  size_t wall_warnings = 0;
  for (const Doc& d : docs) {
    std::string base_path = gate_dir + "/" + d.file;
    std::ifstream in(base_path, std::ios::binary);
    if (!in) {
      if (!d.gated) continue;  // wall sidecar baselines are optional
      std::fprintf(stderr, "bench gate: cannot read baseline %s\n",
                   base_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (d.gated) {
      auto gate = benchkit::gate_compare(buf.str(), *d.body, gate_tol);
      if (!gate.is_ok()) {
        std::fprintf(stderr, "bench gate: %s\n",
                     gate.status().to_string().c_str());
        return 1;
      }
      std::printf("%s: %s", d.file, gate->to_string().c_str());
      gate_ok = gate_ok && gate->ok();
    } else {
      // Soft gate: wall time is real and noisy, so a >10% regression only
      // warns (distinct message, exit stays 0).
      auto gate = benchkit::wall_compare(buf.str(), *d.body);
      if (!gate.is_ok()) {
        std::fprintf(stderr, "bench wall gate: %s\n",
                     gate.status().to_string().c_str());
        continue;  // a broken sidecar never fails the run
      }
      std::printf("%s: %s", d.file, gate->to_string().c_str());
      wall_warnings += gate->warnings.size();
    }
  }
  if (wall_warnings > 0) {
    std::fprintf(stderr,
                 "bench wall gate: %zu wall-clock warning(s) beyond 10%% "
                 "(soft gate; never fails the build)\n",
                 wall_warnings);
  }
  if (!gate_ok) {
    std::fprintf(stderr,
                 "bench gate FAILED: modeled costs regressed beyond %.1f%% "
                 "tolerance\n",
                 100.0 * gate_tol);
    return 1;
  }
  return 0;
}

struct FuzzCliOptions {
  std::string surface = "package";
  fuzz::FuzzOptions fuzz;
  std::string corpus_dir;
  std::string write_corpus_dir;
  std::string replay_file;
  bool selftest = false;
};

int print_reports(const std::vector<fuzz::FuzzReport>& reports) {
  bool failed = false;
  for (const auto& r : reports) {
    std::fputs(r.to_string().c_str(), stdout);
    failed = failed || !r.failures.empty();
  }
  return failed ? 1 : 0;
}

int cmd_fuzz(const FuzzCliOptions& o) {
  if (!o.write_corpus_dir.empty()) {
    auto st = fuzz::write_seed_corpus(o.write_corpus_dir);
    if (!st.is_ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("seed corpus written to %s\n", o.write_corpus_dir.c_str());
    return 0;
  }
  if (!o.replay_file.empty()) {
    std::ifstream in(o.replay_file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", o.replay_file.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    Bytes input;
    if (o.surface == "kcc" &&
        o.replay_file.find(".hex") == std::string::npos) {
      input = to_bytes(buf.str());
    } else {
      auto decoded = fuzz::decode_hex_file(buf.str());
      if (!decoded.is_ok()) {
        std::fprintf(stderr, "%s\n", decoded.status().to_string().c_str());
        return 1;
      }
      input = std::move(*decoded);
    }
    auto surface = fuzz::make_surface(o.surface);
    if (!surface) {
      std::fprintf(stderr,
                   "--replay needs --surface "
                   "package|netsim|kcc|attacker_schedule|synth\n");
      return 2;
    }
    std::printf("%s\n", surface->describe(input).c_str());
    auto v = surface->execute(input);
    if (v.failure) {
      std::printf("FAILURE oracle=%s\n  detail: %s\n", v.failure->first.c_str(),
                  v.failure->second.c_str());
      return 1;
    }
    std::printf("verdict: %s\n",
                v.kind == fuzz::Surface::Verdict::Kind::kAccepted ? "accepted"
                : v.kind == fuzz::Surface::Verdict::Kind::kRejected
                    ? "rejected"
                    : "skipped");
    return 0;
  }
  if (!o.corpus_dir.empty()) {
    auto entries = fuzz::load_corpus(o.corpus_dir);
    if (!entries.is_ok()) {
      std::fprintf(stderr, "%s\n", entries.status().to_string().c_str());
      return 1;
    }
    return print_reports(fuzz::replay_corpus(*entries, o.fuzz));
  }
  if (o.selftest) {
    // Re-introduce each fixed bug class in the target and prove the oracles
    // catch it with a small shrunk repro: the pre-fix wrapping bounds check
    // (package surface), the pre-hardening TOCTOU double fetch
    // (attacker_schedule surface), and an off-by-one mis-planted guard in
    // the CVE synthesizer (cve_synth surface, probe-contract oracle).
    struct Seam {
      const char* what;
      std::unique_ptr<fuzz::Surface> surface;
    };
    std::vector<Seam> seams;
    seams.push_back({"wrapping-bounds bug",
                     fuzz::make_package_surface(
                         {.legacy_wrapping_bounds = true})});
    seams.push_back({"double-fetch TOCTOU bug",
                     fuzz::make_attacker_schedule_surface(
                         {.legacy_double_fetch = true})});
    seams.push_back({"mis-planted synth guard",
                     fuzz::make_cve_synth_surface(
                         {.misplant_off_by_one = true})});
    for (auto& s : seams) {
      auto rep = fuzz::run_fuzz(*s.surface, o.fuzz);
      std::fputs(rep.to_string().c_str(), stdout);
      if (rep.failures.empty()) {
        std::fprintf(stderr,
                     "selftest FAILED: oracles missed the reintroduced %s\n",
                     s.what);
        return 1;
      }
      std::printf("selftest ok: %s caught; shrunk repro:\n%s\n", s.what,
                  s.surface->describe(rep.failures[0].input).c_str());
    }
    return 0;
  }
  std::vector<std::string> surfaces;
  if (o.surface == "all") {
    surfaces = {"package", "netsim", "kcc", "attacker_schedule", "cve_synth"};
  } else {
    surfaces = {o.surface};
  }
  std::vector<fuzz::FuzzReport> reports;
  for (const auto& name : surfaces) {
    auto surface = fuzz::make_surface(name);
    if (!surface) {
      std::fprintf(stderr, "unknown surface: %s\n", name.c_str());
      return 2;
    }
    reports.push_back(fuzz::run_fuzz(*surface, o.fuzz));
  }
  return print_reports(reports);
}

/// Seeded async-adversary campaign: `variants` generated schedules, each
/// judged by the attacker_schedule surface's prevented-or-detected oracle.
/// Workers partition variants statically (worker w takes indices w, w+jobs,
/// ...), results land in index-i slots, and the summary is aggregated in
/// index order — so the output is byte-identical at any --jobs level.
int cmd_attack(u64 schedule_seed, u32 variants, u32 jobs, u32 cpus) {
  std::vector<Bytes> wires(variants);
  std::map<std::string, u32> by_variant;  // sorted -> deterministic print
  for (u32 i = 0; i < variants; ++i) {
    auto sched = attacks::AdversarySchedule::generate(
        schedule_seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
    for (const auto& a : sched.actions) {
      ++by_variant[attacks::adversary_variant_name(a.variant)];
    }
    wires[i] = sched.encode();
  }

  std::vector<fuzz::Surface::Verdict> verdicts(variants);
  jobs = std::max<u32>(1, std::min(jobs, variants));
  auto worker = [&](u32 w) {
    // One surface (with its own cached no-attack baseline) per worker;
    // every execute() boots a fresh deployment, so cases are independent.
    fuzz::AttackerSurfaceOptions so;
    so.cpus = cpus;
    auto surface = fuzz::make_attacker_schedule_surface(so);
    for (u32 i = w; i < variants; i += jobs) {
      verdicts[i] = surface->execute(wires[i]);
    }
  };
  if (jobs == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (u32 w = 0; w < jobs; ++w) pool.emplace_back(worker, w);
    for (auto& th : pool) th.join();
  }

  u32 prevented = 0;
  u32 detected = 0;
  u32 skipped = 0;
  u32 oracle_failures = 0;
  std::printf("adversary campaign: %u variant(s), schedule seed 0x%llx\n",
              variants, static_cast<unsigned long long>(schedule_seed));
  for (u32 i = 0; i < variants; ++i) {
    const auto& v = verdicts[i];
    switch (v.kind) {
      case fuzz::Surface::Verdict::Kind::kAccepted: ++prevented; break;
      case fuzz::Surface::Verdict::Kind::kRejected: ++detected; break;
      case fuzz::Surface::Verdict::Kind::kSkipped: ++skipped; break;
    }
    if (v.failure) {
      ++oracle_failures;
      std::printf("FAILURE variant %u oracle=%s\n  %s\n  schedule: %s\n", i,
                  v.failure->first.c_str(), v.failure->second.c_str(),
                  attacks::AdversarySchedule::decode(wires[i])
                      .value_or(attacks::AdversarySchedule{})
                      .to_string()
                      .c_str());
    }
  }
  std::printf("  prevented (patch applied, memory clean): %u\n", prevented);
  std::printf("  detected  (blocked, kernel untouched):   %u\n", detected);
  if (skipped > 0) std::printf("  skipped: %u\n", skipped);
  std::printf("  action mix:");
  for (const auto& [name, count] : by_variant) {
    std::printf(" %s=%u", name.c_str(), count);
  }
  std::printf("\n");
  if (oracle_failures > 0) {
    std::fprintf(stderr,
                 "attack campaign FAILED: %u silent-corruption/"
                 "silent-failure case(s)\n",
                 oracle_failures);
    return 1;
  }
  std::printf("attack campaign ok: every variant prevented or detected\n");
  return 0;
}

/// `synth`: seeded auto-CVE campaign (DESIGN.md §14). Every case is
/// generated from the campaign seed stream and judged by the full oracle
/// stack — probe contract on the AST evaluator, evaluator-vs-machine
/// differential under two optimizer configs, structural diff confinement —
/// before it is allowed near the live pipeline. `--live N` additionally
/// pushes the first N cases through a full boot -> seal -> stage -> apply
/// deployment and re-probes the exploit. stdout carries ONLY the campaign
/// report, byte-identical across --jobs, so CI can cmp two runs.
int cmd_synth(const CommonFlags& common, u32 cases,
              const std::string& classes_csv, u32 live) {
  cve::CampaignOptions o;
  o.seed = common.seed;
  o.cases = cases;
  o.jobs = common.jobs;
  if (!classes_csv.empty()) {
    o.classes.clear();
    for (const auto& tag : split_ids(classes_csv)) {
      auto cls = cve::bug_class_from_tag(tag);
      if (!cls.is_ok()) {
        std::fprintf(stderr, "synth: %s\n",
                     cls.status().to_string().c_str());
        usage();
        return 2;
      }
      o.classes.push_back(*cls);
    }
  }
  if (live > 0) {
    o.live_cases = live;
    o.live_probe = [&common](const cve::SynthCase& sc) -> Status {
      auto tb = testbed::Testbed::boot(sc.cve, {.seed = common.seed});
      if (!tb.is_ok()) return tb.status();
      testbed::Testbed& t = **tb;
      auto probe = testbed::prober(t);
      auto pre = cve::probe_case(sc.cve, probe, /*expect_fixed=*/false);
      if (!pre.is_ok()) return pre.status();
      if (!pre->detail.empty()) return Status{Errc::kInternal, pre->detail};
      auto rep = t.kshot().live_patch(sc.cve.id);
      if (!rep.is_ok()) return rep.status();
      if (!rep->success) {
        return Status{Errc::kInternal,
                      std::string("live patch failed: ") +
                          core::smm_status_name(rep->smm_status)};
      }
      auto post = cve::probe_case(sc.cve, probe, /*expect_fixed=*/true);
      if (!post.is_ok()) return post.status();
      if (!post->detail.empty()) return Status{Errc::kInternal, post->detail};
      return Status::ok();
    };
  }
  auto rep = cve::run_campaign(o);
  if (!rep.is_ok()) {
    std::fprintf(stderr, "synth: %s\n", rep.status().to_string().c_str());
    return 1;
  }
  std::fputs(rep->report.c_str(), stdout);
  return rep->ok() ? 0 : 1;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: kshot-sim list\n"
      "       kshot-sim exploit <CVE-ID>\n"
      "       kshot-sim patch <CVE-ID> [--rootkit] [--watchdog] [--guard]\n"
      "                 [--kpatch]\n"
      "       kshot-sim single [CVE-ID]       patch one target (defaults to\n"
      "                 CVE-2014-0196); same flags as patch\n"
      "       kshot-sim single --batch A,B,C  apply several CVEs' packages\n"
      "                 in ONE batched SMM session on a merged kernel\n"
      "       kshot-sim fleet <CVE-ID> [--targets N] [--canary K] [--wave W]\n"
      "                 [--abort-rate R] [--drop R] [--corrupt R]\n"
      "                 [--batch A,B,C] (batched sessions per target)\n"
      "                 [--prep-jobs N] (server-side parallel patch prep)\n"
      "                 [--synth-seed S] (roll out a synthesized CVE;\n"
      "                 class cycles with S, id = SYNTH-<TAG>-<S>)\n"
      "       kshot-sim fleet [CVE-ID] --targets 1000000 [--shards R]\n"
      "                 [--sample K] [--relays M] [--relay-fanout F]\n"
      "                 [--fail-permille P]   planet-scale modeled rollout:\n"
      "                 sharded controllers + content-addressed patch relays,\n"
      "                 K real sampled testbeds per wave as ground truth;\n"
      "                 report is byte-identical across --jobs and --shards\n"
      "                 (any scale flag, or --targets > 10000, selects it)\n"
      "       kshot-sim bench [--quick] [--out-dir DIR] [--gate BASELINE_DIR]\n"
      "                 [--gate-tol F] [--cost-scale X]   deterministic\n"
      "                 modeled-cost bench; writes BENCH_table3/4.json (+\n"
      "                 *_wall.json sidecars); --gate fails on regressions\n"
      "       kshot-sim lifecycle             scripted patch-stack smoke:\n"
      "                 apply, depend, supersede, query, out-of-order revert,\n"
      "                 in-place splice; canonical output (byte-identical\n"
      "                 across --jobs) for CI cmp\n"
      "       kshot-sim disasm <CVE-ID> <function>\n"
      "       kshot-sim package <CVE-ID>\n"
      "       kshot-sim synth [--cases N] [--classes OOB,CHK,DSP] [--live K]\n"
      "                 seeded auto-CVE campaign (DESIGN.md §14): every case\n"
      "                 passes probe-contract + evaluator-vs-machine\n"
      "                 differential + diff-confinement oracles; --live K\n"
      "                 also live-patches the first K cases end to end;\n"
      "                 report is byte-identical across --jobs for CI cmp\n"
      "       kshot-sim fuzz [--surface package|netsim|kcc|attacker_schedule"
      "|synth|all]\n"
      "                 [--iters N] [--time-budget T] [--corpus DIR]\n"
      "                 [--write-corpus DIR] [--replay FILE] [--selftest]\n"
      "       kshot-sim attack [--schedule-seed S] [--variants N]\n"
      "                 seeded async-adversary campaign; nonzero exit on any\n"
      "                 silent corruption (deterministic across --jobs)\n"
      "shared flags: --seed S (deterministic seed, default 0x5EED)\n"
      "              --jobs J (fleet worker pool; workload threads for "
      "patch)\n"
      "              --cpus N (simulated CPUs per target, default 1; >1\n"
      "                 engages the multi-CPU SMI rendezvous cost model;\n"
      "                 0 is rejected)\n"
      "              --trace-out FILE (write a Chrome-trace JSON of the run)\n"
      "              --metrics (dump the metrics snapshot to stdout)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage();
    return 2;
  }
  const std::string& cmd = args[0];

  // Strict flag validation: every command declares its boolean and
  // value-taking flags; anything else that starts with "--" is an error
  // (exit 2), not silently ignored. Value flags consume the next argument.
  static const std::vector<std::string> kCommonBool = {"--metrics"};
  static const std::vector<std::string> kCommonValue = {"--seed", "--jobs",
                                                        "--cpus",
                                                        "--trace-out"};
  auto allowed_bool = kCommonBool;
  auto allowed_value = kCommonValue;
  if (cmd == "patch" || cmd == "single") {
    for (const char* f : {"--rootkit", "--watchdog", "--guard", "--kpatch"}) {
      allowed_bool.push_back(f);
    }
    if (cmd == "single") allowed_value.push_back("--batch");
  } else if (cmd == "fleet") {
    for (const char* f : {"--targets", "--canary", "--wave", "--abort-rate",
                          "--drop", "--corrupt", "--batch", "--prep-jobs",
                          "--shards", "--sample", "--relays", "--relay-fanout",
                          "--fail-permille", "--synth-seed"}) {
      allowed_value.push_back(f);
    }
  } else if (cmd == "synth") {
    for (const char* f : {"--cases", "--classes", "--live"}) {
      allowed_value.push_back(f);
    }
  } else if (cmd == "bench") {
    allowed_bool.push_back("--quick");
    for (const char* f : {"--out-dir", "--gate", "--gate-tol",
                          "--cost-scale"}) {
      allowed_value.push_back(f);
    }
  } else if (cmd == "fuzz") {
    allowed_bool.push_back("--selftest");
    for (const char* f : {"--surface", "--iters", "--time-budget", "--corpus",
                          "--write-corpus", "--replay"}) {
      allowed_value.push_back(f);
    }
  } else if (cmd == "attack") {
    for (const char* f : {"--schedule-seed", "--variants"}) {
      allowed_value.push_back(f);
    }
  }
  auto contains = [](const std::vector<std::string>& v, const std::string& s) {
    for (const auto& e : v) {
      if (e == s) return true;
    }
    return false;
  };
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) != 0) continue;  // positional
    if (contains(allowed_bool, args[i])) continue;
    if (contains(allowed_value, args[i])) {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s: flag %s needs a value\n", cmd.c_str(),
                     args[i].c_str());
        usage();
        return 2;
      }
      ++i;  // skip the consumed value
      continue;
    }
    std::fprintf(stderr, "%s: unknown flag %s\n", cmd.c_str(),
                 args[i].c_str());
    usage();
    return 2;
  }

  auto has_flag = [&](const char* f) {
    for (const auto& a : args) {
      if (a == f) return true;
    }
    return false;
  };
  // `--name value` flags; returns fallback when absent or malformed.
  auto value_flag = [&](const char* f, double fallback) {
    for (size_t i = 1; i + 1 < args.size(); ++i) {
      if (args[i] == f) return std::strtod(args[i + 1].c_str(), nullptr);
    }
    return fallback;
  };
  auto string_flag = [&](const char* f, std::string fallback) {
    for (size_t i = 1; i + 1 < args.size(); ++i) {
      if (args[i] == f) return args[i + 1];
    }
    return fallback;
  };

  CommonFlags common;
  common.seed = static_cast<u64>(
      value_flag("--seed", static_cast<double>(common.seed)));
  common.jobs = static_cast<u32>(
      std::max(1.0, value_flag("--jobs", common.jobs)));
  common.trace_out = string_flag("--trace-out", "");
  common.metrics = has_flag("--metrics");
  // --cpus is strict: 0 (or an unparsable value) is a topology that cannot
  // exist, so it exits 2 like an unknown flag rather than being clamped.
  double cpus_v = value_flag("--cpus", 1);
  if (cpus_v < 1) {
    std::fprintf(stderr, "%s: --cpus must be >= 1\n", cmd.c_str());
    usage();
    return 2;
  }
  common.cpus = static_cast<u32>(cpus_v);

  if (cmd == "list") return cmd_list();
  if (cmd == "exploit" && args.size() >= 2) {
    return cmd_exploit(args[1], common);
  }
  if (cmd == "patch" && args.size() >= 2) {
    return cmd_patch(args[1], common, has_flag("--rootkit"),
                     has_flag("--watchdog"), has_flag("--guard"),
                     has_flag("--kpatch"));
  }
  if (cmd == "single") {
    std::string batch_csv = string_flag("--batch", "");
    if (!batch_csv.empty()) return cmd_single_batch(batch_csv, common);
    // `single` is `patch` with a default case: one target, end to end.
    std::string id = args.size() >= 2 && args[1].rfind("--", 0) != 0
                         ? args[1]
                         : "CVE-2014-0196";
    return cmd_patch(id, common, has_flag("--rootkit"), has_flag("--watchdog"),
                     has_flag("--guard"), has_flag("--kpatch"));
  }
  if (cmd == "bench") {
    return cmd_bench(common, has_flag("--quick"), string_flag("--out-dir", ""),
                     string_flag("--gate", ""), value_flag("--gate-tol", 0.02),
                     value_flag("--cost-scale", 1.0));
  }
  if (cmd == "fleet" &&
      (args.size() >= 2 || !string_flag("--batch", "").empty())) {
    auto flag_present = [&](const char* f) {
      for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == f) return true;
      }
      return false;
    };
    // --synth-seed S targets a synthesized CVE instead of a table one: the
    // bug class cycles with the seed (S mod 3) and the id round-trips
    // through cve::resolve_case on every consumer down the line.
    std::string synth_cve_id;
    if (flag_present("--synth-seed")) {
      u64 s = static_cast<u64>(value_flag("--synth-seed", 0));
      synth_cve_id = cve::synth_id(static_cast<cve::BugClass>(s % 3), s);
      std::fprintf(stderr, "fleet: synthesized target %s\n",
                   synth_cve_id.c_str());
    }
    double targets_v = value_flag("--targets", 8);
    // Planet-scale path: any sharding/relay/sampling flag — or a population
    // too large to boot one real testbed per target — routes to the modeled
    // fleetscale coordinator (real testbeds are still sampled per wave).
    bool scale = flag_present("--shards") || flag_present("--sample") ||
                 flag_present("--relays") || flag_present("--relay-fanout") ||
                 flag_present("--fail-permille") || targets_v > 10'000;
    if (scale) {
      if (!string_flag("--batch", "").empty()) {
        std::fprintf(stderr,
                     "fleet: --batch is not supported at planet scale\n");
        usage();
        return 2;
      }
      fleetscale::FleetScaleOptions so;
      if (args.size() >= 2 && args[1].rfind("--", 0) != 0) so.cve_id = args[1];
      if (!synth_cve_id.empty()) so.cve_id = synth_cve_id;
      so.targets = static_cast<u64>(std::max(0.0, targets_v));
      so.shards = static_cast<u32>(std::max(0.0, value_flag("--shards", 4)));
      so.sample = static_cast<u32>(std::max(0.0, value_flag("--sample", 2)));
      so.relays = static_cast<u32>(std::max(0.0, value_flag("--relays", 8)));
      so.relay_fanout =
          static_cast<u32>(std::max(0.0, value_flag("--relay-fanout", 4)));
      so.fail_permille =
          static_cast<u32>(std::max(0.0, value_flag("--fail-permille", 0)));
      so.jobs = common.jobs;
      so.base_seed = common.seed;
      so.cpus = common.cpus;
      so.capture_trace = !common.trace_out.empty();
      Status valid = fleetscale::FleetCoordinator::validate(so);
      if (!valid.is_ok()) {
        std::fprintf(stderr, "fleet: %s\n", valid.to_string().c_str());
        usage();
        return 2;
      }
      fleetscale::FleetCoordinator fc(std::move(so));
      auto rep = fc.run();
      if (!rep.is_ok()) {
        std::fprintf(stderr, "fleetscale campaign failed: %s\n",
                     rep.status().to_string().c_str());
        return 1;
      }
      // stdout carries ONLY the report: CI cmp's it byte-for-byte across
      // --jobs and --shards, so execution topology goes to stderr.
      std::fputs(rep->to_string().c_str(), stdout);
      std::fprintf(stderr,
                   "fleetscale: ran with shards=%u jobs=%u (execution "
                   "detail, never part of the report)\n",
                   static_cast<u32>(std::max(0.0, value_flag("--shards", 4))),
                   common.jobs);
      if (!common.trace_out.empty()) {
        if (write_file(common.trace_out, rep->trace_json) != 0) return 1;
        std::fprintf(stderr, "trace -> %s\n", common.trace_out.c_str());
      }
      if (common.metrics) {
        std::fputs(rep->metrics.to_string().c_str(), stdout);
      }
      return rep->aborted || rep->applied != rep->targets ? 1 : 0;
    }
    fleet::FleetOptions o;
    std::string batch_csv = string_flag("--batch", "");
    if (!batch_csv.empty()) {
      o.batch_cve_ids = split_ids(batch_csv);
    } else if (!synth_cve_id.empty()) {
      o.cve_id = synth_cve_id;
    } else if (args[1].rfind("--", 0) != 0) {
      o.cve_id = args[1];
    } else {
      usage();
      return 2;
    }
    o.prep_jobs =
        static_cast<u32>(std::max(1.0, value_flag("--prep-jobs", 1)));
    o.base_seed = common.seed;
    o.jobs = common.jobs;
    o.cpus = common.cpus;
    o.targets = static_cast<u32>(std::max(1.0, value_flag("--targets", 8)));
    o.rollout.canary =
        static_cast<u32>(std::max(1.0, value_flag("--canary", 1)));
    o.rollout.wave = static_cast<u32>(std::max(1.0, value_flag("--wave", 4)));
    o.rollout.abort_failure_rate = value_flag("--abort-rate", 0.5);
    double drop = value_flag("--drop", 0);
    double corrupt = value_flag("--corrupt", 0);
    if (drop > 0 || corrupt > 0) {
      netsim::FaultPlan fp;
      fp.rates.drop = drop;
      fp.rates.corrupt = corrupt;
      o.fault_plan = fp;
    }
    o.capture_trace = !common.trace_out.empty();
    fleet::FleetController fc(o);
    auto rep = fc.run_campaign();
    if (!rep.is_ok()) {
      std::fprintf(stderr, "fleet campaign failed: %s\n",
                   rep.status().to_string().c_str());
      return 1;
    }
    std::fputs(rep->to_string().c_str(), stdout);
    std::printf("modeled makespan at --jobs %u: %.1f us (serial %.1f us)\n",
                o.jobs, fleet::modeled_makespan_us(*rep, o.jobs),
                fleet::modeled_makespan_us(*rep, 1));
    if (!common.trace_out.empty()) {
      if (write_file(common.trace_out, rep->trace_json) != 0) return 1;
      std::printf("trace -> %s\n", common.trace_out.c_str());
    }
    if (common.metrics) {
      std::fputs(rep->metrics.to_string().c_str(), stdout);
    }
    return rep->aborted || rep->applied != rep->targets ? 1 : 0;
  }
  if (cmd == "lifecycle") return cmd_lifecycle(common);
  if (cmd == "disasm" && args.size() >= 3) return cmd_disasm(args[1], args[2]);
  if (cmd == "package" && args.size() >= 2) return cmd_package(args[1]);
  if (cmd == "fuzz") {
    FuzzCliOptions o;
    o.surface = string_flag("--surface", o.surface);
    o.fuzz.seed = common.seed;
    o.fuzz.iters = static_cast<u32>(
        std::max(1.0, value_flag("--iters", o.fuzz.iters)));
    o.fuzz.time_budget_s = value_flag("--time-budget", 0);
    o.corpus_dir = string_flag("--corpus", "");
    o.write_corpus_dir = string_flag("--write-corpus", "");
    o.replay_file = string_flag("--replay", "");
    o.selftest = has_flag("--selftest");
    return cmd_fuzz(o);
  }
  if (cmd == "attack") {
    u64 schedule_seed = static_cast<u64>(
        value_flag("--schedule-seed", static_cast<double>(common.seed)));
    u32 variants =
        static_cast<u32>(std::max(1.0, value_flag("--variants", 200)));
    return cmd_attack(schedule_seed, variants, common.jobs, common.cpus);
  }
  if (cmd == "synth") {
    u32 cases = static_cast<u32>(std::max(1.0, value_flag("--cases", 200)));
    u32 live = static_cast<u32>(std::max(0.0, value_flag("--live", 0)));
    return cmd_synth(common, cases, string_flag("--classes", ""), live);
  }
  usage();
  return 2;
}
