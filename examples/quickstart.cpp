// Quickstart: the complete KShot pipeline on one CVE, narrated.
//
//   $ ./examples/quickstart
//
// Boots a simulated target machine running a vulnerable kernel, demonstrates
// the exploit, live-patches the kernel through the SGX enclave + SMM handler
// pipeline, and shows the exploit is dead while benign behaviour and the
// running workload are untouched.
#include <cstdio>

#include "common/log.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  set_log_level(LogLevel::kInfo);
  const auto& c = cve::find_case("CVE-2017-17806");

  std::printf("== KShot quickstart: live patching %s ==\n\n", c.id.c_str());
  std::printf(
      "Vulnerability: missing bounds check in %s() — a crafted syscall "
      "argument reaches a kernel BUG.\n\n",
      c.entry_function.c_str());

  // 1. Boot the deployment: machine, vulnerable kernel, SGX runtime, remote
  //    patch server, and KShot (SMM handler installed + SMRAM locked at
  //    "firmware" time, enclave loaded at "boot" time).
  auto tb = testbed::Testbed::boot(c, {.workload_threads = 4});
  if (!tb.is_ok()) {
    std::printf("boot failed: %s\n", tb.status().to_string().c_str());
    return 1;
  }
  testbed::Testbed& t = **tb;
  std::printf("[1] target machine booted: kernel %s, %zu functions, %zu "
              "bytes of text, 4 workload threads\n",
              c.kernel.c_str(), t.kernel().image().symbols.size(),
              t.kernel().image().text.size());

  // 2. Demonstrate the exploit.
  auto exploit = t.run_exploit();
  std::printf("[2] exploit syscall(%d, 0x%llx): %s\n", c.syscall_nr,
              static_cast<unsigned long long>(c.exploit_args[0]),
              exploit->oops ? "KERNEL OOPS (vulnerable)" : "no effect?!");

  // 3. Live patch: fetch (attested, encrypted) -> SGX preprocessing ->
  //    mem_W staging -> SMI -> SMM verify + apply.
  auto report = t.kshot().live_patch(c.id);
  if (!report.is_ok() || !report->success) {
    std::printf("live patch failed\n");
    return 1;
  }
  std::printf(
      "[3] live patch applied: %u function(s), %u bytes\n"
      "      SGX:  fetch %.1fus, preprocess %.1fus, pass %.1fus\n"
      "      SMM:  keygen %.1fus + decrypt %.1fus + verify %.1fus + apply "
      "%.1fus + switch %.1fus\n"
      "      OS paused for %.1fus (modeled; paper reports ~50us)\n",
      report->stats.functions, report->stats.code_bytes,
      report->sgx.fetch_us, report->sgx.preprocess_us,
      report->sgx.passing_us, report->smm.keygen_us, report->smm.decrypt_us,
      report->smm.verify_us, report->smm.apply_us, report->smm.switch_us,
      report->smm.modeled_total_us);

  // 4. Verify.
  exploit = t.run_exploit();
  auto benign = t.run_benign();
  std::printf("[4] exploit after patch: %s (returns -EINVAL: %s)\n",
              exploit->oops ? "STILL VULNERABLE" : "neutralized",
              exploit->value == cve::kEinval ? "yes" : "no");
  std::printf("    benign syscall unaffected: %s\n",
              !benign->oops ? "yes" : "no");

  // 5. Workload health.
  t.scheduler().run(2000, 64);
  std::printf("[5] workload after patching: %llu syscalls served, %llu "
              "oopses\n",
              static_cast<unsigned long long>(
                  t.scheduler().stats().syscalls_completed),
              static_cast<unsigned long long>(t.scheduler().stats().oopses));

  std::printf("\nDone: the kernel was never rebooted and no process was "
              "checkpointed.\n");
  return exploit->oops ? 1 : 0;
}
