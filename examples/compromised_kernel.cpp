// The headline scenario (paper §I/§VI-D): the kernel is already compromised
// by a rootkit that actively fights live patching. The OS-trusting patcher
// (kpatch) silently loses; KShot's SMM-based pipeline survives.
//
//   $ ./examples/compromised_kernel
#include <cstdio>

#include "attacks/rootkits.hpp"
#include "baselines/kpatch_sim.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

bool exploit_fires(testbed::Testbed& t) {
  auto r = t.run_exploit();
  return r.is_ok() && r->oops;
}

}  // namespace

int main() {
  const auto& c = cve::find_case("CVE-2016-5195");  // Dirty-COW-inspired
  std::printf("== Patching a compromised kernel: %s ==\n\n", c.id.c_str());

  // ---- Round 1: kpatch on the compromised kernel -------------------------
  {
    auto tb = testbed::Testbed::boot(c, {.seed = 0xBAD});
    testbed::Testbed& t = **tb;
    auto rootkit =
        std::make_shared<attacks::ReversionRootkit>(t.pre_image());
    t.kernel().insmod(rootkit);
    std::printf("[round 1] rootkit resident; deploying patch with "
                "kpatch-style in-kernel patcher...\n");

    baselines::KpatchSim kpatch(t.kernel(), t.scheduler());
    auto set = t.server().build_patchset(c.id, t.kernel().os_info());
    auto rep = kpatch.apply(*set);
    std::printf("  kpatch reports: %s\n",
                rep->success ? "SUCCESS" : rep->detail.c_str());
    std::printf("  exploit immediately after:   %s\n",
                exploit_fires(t) ? "fires" : "dead");

    t.scheduler().run(3);  // the rootkit gets a tick
    std::printf("  exploit a few ticks later:   %s   (rootkit reverted %llu "
                "trampolines)\n",
                exploit_fires(t) ? "FIRES AGAIN" : "dead",
                static_cast<unsigned long long>(rootkit->reversions()));
    std::printf("  kpatch has no idea anything happened.\n\n");
  }

  // ---- Round 2: KShot on the same compromised kernel ----------------------
  {
    auto tb = testbed::Testbed::boot(c, {.seed = 0xBAD});
    testbed::Testbed& t = **tb;
    auto rootkit =
        std::make_shared<attacks::ReversionRootkit>(t.pre_image());
    t.kernel().insmod(rootkit);
    std::printf("[round 2] same rootkit; deploying with KShot...\n");

    auto rep = t.kshot().live_patch(c.id);
    std::printf("  KShot reports: %s\n",
                rep.is_ok() && rep->success ? "SUCCESS" : "failure");

    t.scheduler().run(3);
    bool reverted = exploit_fires(t);
    std::printf("  rootkit reverts the trampoline:  exploit %s\n",
                reverted ? "fires (as expected)" : "dead");

    // Periodic SMM introspection is part of the deployment (§V-D); the
    // rootkit cannot block or observe it.
    auto rep2 = t.kshot().introspect();
    std::printf("  SMM introspection: %u trampolines repaired, %u bodies, "
                "%u page attrs\n",
                rep2->trampolines_reverted, rep2->memx_tampered,
                rep2->attrs_restored);
    bool still = exploit_fires(t);
    std::printf("  exploit after introspection:  %s\n",
                still ? "STILL FIRES" : "dead");

    // The rootkit keeps trying; a periodic introspection sweep keeps
    // winning because the detection+repair runs at a privilege the kernel
    // cannot touch.
    t.scheduler().run(3);
    t.kshot().introspect();
    std::printf("  after another attack/introspect round: exploit %s\n\n",
                exploit_fires(t) ? "fires" : "dead");

    std::printf("Conclusion: the in-kernel patcher's work is silently "
                "undone; KShot detects and repairs\nreversion from SMM, "
                "which the compromised kernel can neither block nor "
                "forge.\n");
    return still ? 1 : 0;
  }
}
