// Fleet-style patch campaign: live-patch every Table I CVE on its own
// target machine while a workload runs, collecting the aggregate statistics
// the paper's RQ1/RQ2 sections report.
//
//   $ ./examples/cve_campaign
#include <cstdio>

#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  std::printf("== Patch campaign across %zu CVE targets ==\n\n",
              cve::all_cases().size());

  int ok = 0;
  double worst_pause = 0, total_pause = 0;
  u64 total_oopses = 0;
  size_t total_bytes = 0;

  for (const auto& c : cve::all_cases()) {
    auto tb = testbed::Testbed::boot(c, {.workload_threads = 3});
    if (!tb.is_ok()) {
      std::printf("%-16s boot failed\n", c.id.c_str());
      continue;
    }
    testbed::Testbed& t = **tb;
    t.scheduler().run(300, 64);  // busy system before the patch

    auto rep = t.kshot().live_patch(c.id);
    bool patched = rep.is_ok() && rep->success;

    t.scheduler().run(300, 64);  // busy system after the patch
    auto exploit = t.run_exploit();
    bool dead = exploit.is_ok() && !exploit->oops;

    bool healthy = t.scheduler().stats().oopses == 0;
    if (patched && dead && healthy) ++ok;
    if (patched) {
      worst_pause = std::max(worst_pause, rep->smm.modeled_total_us);
      total_pause += rep->smm.modeled_total_us;
      total_bytes += rep->stats.code_bytes;
    }
    total_oopses += t.scheduler().stats().oopses;

    std::printf("%-16s %s  pause %6.1fus  exploit %s  workload %s\n",
                c.id.c_str(), patched ? "patched" : "FAILED ",
                patched ? rep->smm.modeled_total_us : 0.0,
                dead ? "dead " : "ALIVE",
                healthy ? "healthy" : "OOPSED");
  }

  std::printf("\n%d/%zu targets fully patched and healthy.\n", ok,
              cve::all_cases().size());
  std::printf("Mean OS pause %.1fus, worst %.1fus; %zu patch bytes shipped; "
              "%llu workload oopses.\n",
              total_pause / cve::all_cases().size(), worst_pause, total_bytes,
              static_cast<unsigned long long>(total_oopses));
  return ok == static_cast<int>(cve::all_cases().size()) ? 0 : 1;
}
