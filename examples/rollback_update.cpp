// Patch rollback (paper §V-C "Patch Rollback/Update"): 15-24% of OS patches
// are themselves buggy (Yin et al., cited by the paper). This example ships
// a *bad* patch that breaks benign traffic, detects the regression from the
// oops log, rolls it back from SMM, and then applies the corrected patch.
//
//   $ ./examples/rollback_update
#include <cstdio>

#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  const auto& c = cve::find_case("CVE-2015-5707");
  std::printf("== Rollback of a faulty update: %s ==\n\n", c.id.c_str());

  auto tb = testbed::Testbed::boot(c, {.workload_threads = 2});
  testbed::Testbed& t = **tb;

  // A "fix" that is itself broken: it blocks the exploit but BUGs on any
  // odd-valued benign argument (an overly aggressive check).
  std::string bad_post = c.pre_source;
  std::string needle = "bug(" + std::to_string(c.trap_code) + ");";
  size_t pos = bad_post.find(needle);
  bad_post.replace(pos, needle.size(), "return 0 - 22;");
  // Insert a fresh bug on the benign path, right after the guard block.
  std::string guard_end = "return 0 - 22;\n  }\n";
  pos = bad_post.find(guard_end);
  bad_post.insert(pos + guard_end.size(),
                  "  if ((a1 & 1) == 1) {\n    bug(77);\n  }\n");
  t.server().add_patch({"BROKEN-FIX", c.kernel, c.pre_source, bad_post});

  std::printf("[1] applying the vendor's first (broken) fix...\n");
  auto rep = t.kshot().live_patch("BROKEN-FIX");
  std::printf("    deployed: %s (the pipeline can't know the patch logic "
              "is wrong)\n",
              rep->success ? "yes" : "no");

  auto exploit = t.run_exploit();
  std::printf("[2] exploit: %s\n", exploit->oops ? "fires" : "blocked");

  // The regression shows up in production traffic.
  auto odd = t.run_syscall(c.syscall_nr, {33, 1, 0, 0, 0});
  std::printf("    benign odd-argument syscall: %s\n",
              odd->oops ? "KERNEL OOPS — the patch is bad" : "fine");

  std::printf("[3] operator sends the remote rollback instruction...\n");
  auto rb = t.kshot().rollback();
  std::printf("    rollback: %s (SMM restored the original entry bytes)\n",
              rb->success ? "done" : "failed");
  odd = t.run_syscall(c.syscall_nr, {33, 1, 0, 0, 0});
  std::printf("    benign odd-argument syscall: %s\n",
              odd->oops ? "still broken" : "healthy again");
  exploit = t.run_exploit();
  std::printf("    (of course the original vulnerability is back: exploit "
              "%s)\n",
              exploit->oops ? "fires" : "blocked");

  std::printf("[4] applying the corrected fix...\n");
  rep = t.kshot().live_patch(c.id);
  exploit = t.run_exploit();
  odd = t.run_syscall(c.syscall_nr, {33, 1, 0, 0, 0});
  std::printf("    exploit: %s, odd-argument syscall: %s\n",
              exploit->oops ? "fires" : "blocked",
              odd->oops ? "broken" : "healthy");

  bool ok = rep->success && !exploit->oops && !odd->oops;
  std::printf("\n%s\n", ok ? "Recovered without a reboot: bad patch in, bad "
                             "patch out, good patch in."
                           : "Scenario failed.");
  return ok ? 0 : 1;
}
