// Kernel runtime tests: loader page attributes, syscall dispatch, the
// scheduler (time slicing, oops accounting, mid-syscall suspension), and the
// kernel-module hook.
#include <gtest/gtest.h>

#include "cve/suite.hpp"
#include "crypto/hmac.hpp"
#include "kcc/compiler.hpp"
#include "kernel/scheduler.hpp"

namespace kshot::kernel {
namespace {

struct World {
  std::unique_ptr<machine::Machine> m;
  std::unique_ptr<Kernel> k;
  std::unique_ptr<Scheduler> sched;
};

World make_world(const std::string& extra_src = "") {
  MemoryLayout lay;
  World w;
  w.m = std::make_unique<machine::Machine>(lay.mem_bytes, lay.smram_base,
                                           lay.smram_size);
  kcc::CompileOptions opts;
  opts.text_base = lay.text_base;
  opts.data_base = lay.data_base;
  opts.version = "sim-4.4";
  auto img = kcc::compile_source(cve::base_kernel_source() + extra_src, opts);
  EXPECT_TRUE(img.is_ok()) << img.status().to_string();
  w.k = std::make_unique<Kernel>(*w.m, std::move(*img), lay);
  EXPECT_TRUE(w.k->load().is_ok());
  EXPECT_TRUE(w.k->register_syscall(cve::kSysAccount, "sys_account").is_ok());
  EXPECT_TRUE(w.k->register_syscall(cve::kSysBusy, "sys_busy").is_ok());
  EXPECT_TRUE(w.k->register_syscall(cve::kSysHash, "sys_hash").is_ok());
  w.sched = std::make_unique<Scheduler>(*w.m, *w.k);
  return w;
}

TEST(KernelLoad, TextCopiedAndExecutable) {
  World w = make_world();
  const auto& img = w.k->image();
  auto text = w.m->mem().read_bytes(img.text_base, img.text.size(),
                                    machine::AccessMode::normal());
  ASSERT_TRUE(text.is_ok());
  EXPECT_EQ(*text, img.text);
}

TEST(KernelLoad, ReservedRegionAttributes) {
  World w = make_world();
  const auto& lay = w.k->layout();
  auto rw = w.m->mem().attrs_at(lay.mem_rw_base());
  EXPECT_TRUE(rw.read && rw.write);
  auto ww = w.m->mem().attrs_at(lay.mem_w_base());
  EXPECT_TRUE(!ww.read && ww.write && !ww.exec);
  auto x = w.m->mem().attrs_at(lay.mem_x_base());
  EXPECT_TRUE(!x.read && !x.write && x.exec);
}

TEST(KernelLoad, MismatchedImageBaseRejected) {
  MemoryLayout lay;
  machine::Machine m(lay.mem_bytes, lay.smram_base, lay.smram_size);
  kcc::CompileOptions opts;
  opts.text_base = 0x999000;  // wrong
  opts.data_base = lay.data_base;
  auto img = kcc::compile_source("fn f() { return 1; }", opts);
  ASSERT_TRUE(img.is_ok());
  Kernel k(m, std::move(*img), lay);
  EXPECT_EQ(k.load().code(), Errc::kFailedPrecondition);
}

TEST(KernelSyscalls, RegistrationValidatesSymbol) {
  World w = make_world();
  EXPECT_EQ(w.k->register_syscall(99, "no_such_fn").code(), Errc::kNotFound);
  EXPECT_FALSE(w.k->syscall_entry(1234).is_ok());
  EXPECT_TRUE(w.k->syscall_entry(cve::kSysHash).is_ok());
}

TEST(KernelGlobals, ReadWriteThroughSymbolTable) {
  World w = make_world();
  auto j = w.k->read_global("jiffies");
  ASSERT_TRUE(j.is_ok());
  EXPECT_EQ(*j, 0u);
  ASSERT_TRUE(w.k->write_global("jiffies", 55).is_ok());
  EXPECT_EQ(*w.k->read_global("jiffies"), 55u);
  EXPECT_FALSE(w.k->read_global("bogus").is_ok());
}

TEST(KernelOsInfo, MatchesImage) {
  World w = make_world();
  OsInfo info = w.k->os_info();
  EXPECT_EQ(info.version, "sim-4.4");
  EXPECT_EQ(info.text_base, w.k->layout().text_base);
  EXPECT_TRUE(
      crypto::digest_equal(info.measurement, w.k->image().measurement()));
}

// ---- Scheduler ---------------------------------------------------------------

TEST(Scheduler, SingleThreadCompletesSyscalls) {
  World w = make_world();
  auto tid = w.sched->spawn({{cve::kSysHash, {5, 0, 0, 0, 0}}}, false);
  ASSERT_TRUE(tid.is_ok());
  w.sched->run(100);
  const Thread& t = w.sched->thread(*tid);
  EXPECT_EQ(t.state(), ThreadState::kFinished);
  EXPECT_EQ(t.syscalls_completed(), 1u);
  // sys_hash(5) result matches k_hash's formula.
  EXPECT_EQ(t.last_result(), (5ull & 1048575) * 40503 % 65521);
}

TEST(Scheduler, LoopingThreadKeepsServing) {
  World w = make_world();
  auto tid = w.sched->spawn({{cve::kSysAccount, {0, 0, 0, 0, 0}}}, true);
  ASSERT_TRUE(tid.is_ok());
  w.sched->run(500);
  EXPECT_GT(w.sched->thread(*tid).syscalls_completed(), 10u);
  EXPECT_EQ(w.sched->thread(*tid).state(), ThreadState::kReady);
  auto jiffies = w.k->read_global("jiffies");
  EXPECT_EQ(*jiffies, w.sched->thread(*tid).syscalls_completed());
}

TEST(Scheduler, RoundRobinInterleavesThreads) {
  World w = make_world();
  auto t1 = w.sched->spawn({{cve::kSysBusy, {300, 0, 0, 0, 0}}}, true);
  auto t2 = w.sched->spawn({{cve::kSysBusy, {300, 0, 0, 0, 0}}}, true);
  ASSERT_TRUE(t1.is_ok() && t2.is_ok());
  w.sched->run(2000, 32);
  EXPECT_GT(w.sched->thread(*t1).syscalls_completed(), 0u);
  EXPECT_GT(w.sched->thread(*t2).syscalls_completed(), 0u);
}

TEST(Scheduler, MidSyscallSuspension) {
  World w = make_world();
  // A long busy loop with a tiny quantum must get suspended mid-call.
  auto tid = w.sched->spawn({{cve::kSysBusy, {1000, 0, 0, 0, 0}}}, true);
  ASSERT_TRUE(tid.is_ok());
  w.sched->run(1, 16);
  const Thread& t = w.sched->thread(*tid);
  EXPECT_TRUE(t.mid_syscall());
  // Saved rip must be inside kernel text.
  u64 rip = t.saved_ctx().rip;
  EXPECT_GE(rip, w.k->layout().text_base);
  EXPECT_LT(rip, w.k->layout().text_base + w.k->image().text.size());
}

TEST(Scheduler, AnyThreadInRange) {
  World w = make_world();
  auto tid = w.sched->spawn({{cve::kSysBusy, {1000, 0, 0, 0, 0}}}, true);
  ASSERT_TRUE(tid.is_ok());
  w.sched->run(1, 16);
  u64 rip = w.sched->thread(*tid).saved_ctx().rip;
  EXPECT_TRUE(w.sched->any_thread_in_range(rip, rip + 1));
  EXPECT_FALSE(w.sched->any_thread_in_range(0x1, 0x2));
}

TEST(Scheduler, OopsRecorded) {
  World w = make_world("fn sys_crash(a) { bug(33); return 0; }");
  ASSERT_TRUE(w.k->register_syscall(50, "sys_crash").is_ok());
  auto tid = w.sched->spawn({{50, {0, 0, 0, 0, 0}}}, false);
  ASSERT_TRUE(tid.is_ok());
  w.sched->run(100);
  EXPECT_EQ(w.sched->thread(*tid).state(), ThreadState::kOops);
  ASSERT_EQ(w.k->oops_log().size(), 1u);
  EXPECT_EQ(w.k->oops_log()[0].code, 33u);
  EXPECT_EQ(w.sched->stats().oopses, 1u);
}

TEST(Scheduler, BadSyscallNumberOopses) {
  World w = make_world();
  auto tid = w.sched->spawn({{777, {0, 0, 0, 0, 0}}}, false);
  ASSERT_TRUE(tid.is_ok());
  w.sched->run(10);
  EXPECT_EQ(w.sched->thread(*tid).state(), ThreadState::kOops);
}

TEST(Scheduler, EmptyProgramRejected) {
  World w = make_world();
  EXPECT_FALSE(w.sched->spawn({}, false).is_ok());
}

TEST(Scheduler, CheckpointableBytesScalesWithThreads) {
  World w = make_world();
  size_t none = w.sched->checkpointable_bytes();
  EXPECT_EQ(none, 0u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        w.sched->spawn({{cve::kSysAccount, {0, 0, 0, 0, 0}}}, true).is_ok());
  }
  EXPECT_GE(w.sched->checkpointable_bytes(),
            4 * w.k->layout().stack_size);
}

TEST(Scheduler, RestartInFlightSyscalls) {
  World w = make_world();
  auto tid = w.sched->spawn({{cve::kSysBusy, {1000, 0, 0, 0, 0}}}, true);
  ASSERT_TRUE(tid.is_ok());
  w.sched->run(1, 16);
  ASSERT_TRUE(w.sched->thread(*tid).mid_syscall());
  w.sched->restart_in_flight_syscalls();
  EXPECT_FALSE(w.sched->thread(*tid).mid_syscall());
  // The thread still makes progress afterwards.
  w.sched->run(2000, 64);
  EXPECT_GT(w.sched->thread(*tid).syscalls_completed(), 0u);
}

// ---- Kernel modules --------------------------------------------------------

class TickCounter final : public KernelModule {
 public:
  std::string name() const override { return "tick_counter"; }
  void on_tick(machine::Machine&, Kernel&) override { ++ticks; }
  int ticks = 0;
};

TEST(KernelModules, TickHookRunsPerQuantum) {
  World w = make_world();
  auto mod = std::make_shared<TickCounter>();
  w.k->insmod(mod);
  ASSERT_TRUE(
      w.sched->spawn({{cve::kSysAccount, {0, 0, 0, 0, 0}}}, true).is_ok());
  w.sched->run(25);
  EXPECT_EQ(mod->ticks, 25);
}

TEST(KernelModules, RmmodRemoves) {
  World w = make_world();
  auto mod = std::make_shared<TickCounter>();
  w.k->insmod(mod);
  EXPECT_TRUE(w.k->rmmod("tick_counter").is_ok());
  EXPECT_EQ(w.k->rmmod("tick_counter").code(), Errc::kNotFound);
  ASSERT_TRUE(
      w.sched->spawn({{cve::kSysAccount, {0, 0, 0, 0, 0}}}, true).is_ok());
  w.sched->run(10);
  EXPECT_EQ(mod->ticks, 0);
}

TEST(KernelModules, ModulesCanPatchKernelText) {
  // Kernel-privileged code may rewrite kernel text — the capability both
  // kpatch and rootkits rely on.
  World w = make_world();
  u64 entry = *w.k->syscall_entry(cve::kSysHash);
  Bytes patch = {0x90};
  EXPECT_TRUE(w.m->mem()
                  .write(entry, patch, machine::AccessMode::normal())
                  .is_ok());
}

}  // namespace
}  // namespace kshot::kernel
