// Zero-copy differential layer (the tentpole's lock): the legacy copying
// package parser and the new span parser must be observationally identical
// on every input the repo has ever cared about. Both parser modes replay
// the ENTIRE checked-in fuzz corpus — package wires (bare and batch
// envelopes), lifecycle op schedules, and attacker schedules — and every
// case must produce the same verdict, the same oracle outcome, and a
// byte-identical state digest (final target memory + per-step statuses +
// trace span content). The only thing allowed to differ between the modes
// is the smm.staged_copies counter, which is the whole point: the staged
// path must copy exactly once (the SMM commit write) under the span parser.
#include <gtest/gtest.h>

#include "core/kshot.hpp"
#include "cve/suite.hpp"
#include "fuzz/fuzz.hpp"
#include "obs/metrics.hpp"
#include "testbed/testbed.hpp"

namespace kshot::fuzz {
namespace {

std::vector<CorpusEntry> corpus_for(const std::string& surface) {
  auto entries = load_corpus(KSHOT_CORPUS_DIR);
  EXPECT_TRUE(entries.is_ok()) << entries.status().to_string();
  std::vector<CorpusEntry> out;
  if (!entries.is_ok()) return out;
  for (auto& e : *entries) {
    if (e.surface == surface) out.push_back(std::move(e));
  }
  EXPECT_FALSE(out.empty()) << "no corpus entries for surface " << surface;
  return out;
}

/// Runs one corpus entry through both parser modes and asserts the
/// observable outcomes are identical. `digest_required` is false only for
/// surfaces that can legitimately skip (attacker boots can refuse).
void expect_differential_identical(Surface& legacy, Surface& spans,
                                   const CorpusEntry& e,
                                   bool digest_required = true) {
  SCOPED_TRACE(e.surface + "/" + e.file);
  auto vl = legacy.execute(e.input);
  auto vs = spans.execute(e.input);
  EXPECT_EQ(static_cast<int>(vl.kind), static_cast<int>(vs.kind));
  ASSERT_EQ(vl.failure.has_value(), vs.failure.has_value())
      << (vl.failure ? "legacy tripped: " + vl.failure->first
                     : "span tripped: " + vs.failure->first);
  if (vl.failure) {
    EXPECT_EQ(vl.failure->first, vs.failure->first);
    EXPECT_EQ(vl.failure->second, vs.failure->second);
  }
  if (digest_required && vl.kind != Surface::Verdict::Kind::kSkipped) {
    EXPECT_FALSE(vl.state_digest.empty());
  }
  EXPECT_EQ(vl.state_digest, vs.state_digest);
}

TEST(ZeroCopyDifferential, PackageCorpusIdenticalAcrossParserModes) {
  auto legacy = make_package_surface({.legacy_copy_parser = true});
  auto spans = make_package_surface({});
  for (const auto& e : corpus_for("package")) {
    expect_differential_identical(*legacy, *spans, e);
  }
}

TEST(ZeroCopyDifferential, LifecycleCorpusIdenticalAcrossParserModes) {
  auto legacy = make_lifecycle_surface({.legacy_copy_parser = true});
  auto spans = make_lifecycle_surface({});
  for (const auto& e : corpus_for("lifecycle")) {
    expect_differential_identical(*legacy, *spans, e);
  }
}

TEST(ZeroCopyDifferential, AttackerCorpusIdenticalAcrossParserModes) {
  auto legacy = make_attacker_schedule_surface({.legacy_copy_parser = true});
  auto spans = make_attacker_schedule_surface({});
  for (const auto& e : corpus_for("attacker_schedule")) {
    expect_differential_identical(*legacy, *spans, e,
                                  /*digest_required=*/false);
  }
}

/// The differential also has to hold off the checked-in corpus: a seeded
/// slice of freshly generated cases (the same generators the fuzzer uses)
/// goes through both modes. Catches parser divergence on inputs nobody has
/// minimized yet.
TEST(ZeroCopyDifferential, GeneratedPackageCasesIdenticalAcrossParserModes) {
  auto legacy = make_package_surface({.legacy_copy_parser = true});
  auto spans = make_package_surface({});
  Rng rng(0x2E80C0);
  for (u32 i = 0; i < 40; ++i) {
    Bytes wire = spans->generate(rng);
    CorpusEntry e{"package", "generated-" + std::to_string(i), wire};
    expect_differential_identical(*legacy, *spans, e);
  }
}

TEST(ZeroCopyDifferential, GeneratedLifecycleCasesIdenticalAcrossParserModes) {
  auto legacy = make_lifecycle_surface({.legacy_copy_parser = true});
  auto spans = make_lifecycle_surface({});
  Rng rng(0x11FEC7C1E);
  for (u32 i = 0; i < 40; ++i) {
    Bytes wire = spans->generate(rng);
    CorpusEntry e{"lifecycle", "generated-" + std::to_string(i), wire};
    expect_differential_identical(*legacy, *spans, e);
  }
}

/// The payoff the differential locks in: on the staged hot path the span
/// parser copies package bytes exactly once — the SMM commit write — where
/// the legacy parser copies on deserialize, open, parse, retention, and
/// commit.
TEST(ZeroCopyCounters, StagedPathCopiesExactlyOncePerPackage) {
  obs::MetricsRegistry reg;
  testbed::TestbedOptions topts;
  topts.seed = 0x5EED;
  topts.metrics = &reg;
  auto tb = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"),
                                   std::move(topts));
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  auto rep = (*tb)->kshot().live_patch("CVE-2014-0196");
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success);
  EXPECT_EQ(reg.counter("smm.staged_copies").value(), 1u);
}

TEST(ZeroCopyCounters, LegacyParserCopiesStrictlyMore) {
  obs::MetricsRegistry reg;
  testbed::TestbedOptions topts;
  topts.seed = 0x5EED;
  topts.metrics = &reg;
  auto tb = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"),
                                   std::move(topts));
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  (*tb)->kshot().handler().enable_legacy_copy_parser_for_selftest();
  auto rep = (*tb)->kshot().live_patch("CVE-2014-0196");
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success);
  EXPECT_EQ(reg.counter("smm.staged_copies").value(), 5u);
  // The parser seam must never leak into the modeled result: same seed,
  // same CVE, same downtime as the zero-copy run.
  obs::MetricsRegistry reg2;
  testbed::TestbedOptions t2;
  t2.seed = 0x5EED;
  t2.metrics = &reg2;
  auto tb2 = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"),
                                    std::move(t2));
  ASSERT_TRUE(tb2.is_ok());
  auto rep2 = (*tb2)->kshot().live_patch("CVE-2014-0196");
  ASSERT_TRUE(rep2.is_ok());
  EXPECT_EQ(rep->downtime_cycles, rep2->downtime_cycles);
  EXPECT_EQ(rep->smm.modeled_total_us, rep2->smm.modeled_total_us);
}

}  // namespace
}  // namespace kshot::fuzz
