// The fuzzing harness's own contract (DESIGN.md §9): runs are deterministic,
// every invariant oracle passes on the current tree, the checked-in
// regression corpus replays clean, and the harness provably catches the
// pre-PR-3 wrapping-bounds bug when it is deliberately re-introduced —
// with a shrunk, replayable repro.
#include <gtest/gtest.h>

#include "fuzz/fuzz.hpp"
#include "patchtool/package.hpp"

namespace kshot::fuzz {
namespace {

TEST(FuzzDeterminism, SameSeedSameReportBytes) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 300;
  // Two independently constructed surfaces: catches hidden global state as
  // well as RNG misuse.
  auto s1 = make_package_surface();
  auto s2 = make_package_surface();
  EXPECT_EQ(run_fuzz(*s1, opts).to_string(), run_fuzz(*s2, opts).to_string());
}

TEST(FuzzDeterminism, DifferentSeedsDifferentCases) {
  auto s = make_package_surface();
  Rng r1(1), r2(1), r3(2);
  Bytes a = s->generate(r1);
  Bytes b = s->generate(r2);
  Bytes c = s->generate(r3);
  EXPECT_EQ(a, b) << "generation is not a pure function of the RNG";
  EXPECT_NE(a, c) << "the seed is not reaching generation";
}

TEST(FuzzOracles, PackageSurfacePassesOnCurrentTree) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 400;
  auto s = make_package_surface();
  auto rep = run_fuzz(*s, opts);
  EXPECT_EQ(rep.cases, opts.iters);
  EXPECT_TRUE(rep.failures.empty()) << rep.to_string();
  // The generator must exercise both accept and reject paths.
  EXPECT_GT(rep.accepted, 0u);
  EXPECT_GT(rep.rejected, 0u);
}

TEST(FuzzOracles, NetsimSurfacePassesOnCurrentTree) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 150;
  auto s = make_netsim_surface();
  auto rep = run_fuzz(*s, opts);
  EXPECT_TRUE(rep.failures.empty()) << rep.to_string();
  EXPECT_GT(rep.accepted, 0u);
  EXPECT_GT(rep.rejected, 0u);
}

TEST(FuzzOracles, LifecycleSurfacePassesOnCurrentTree) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 150;
  auto s = make_lifecycle_surface();
  auto rep = run_fuzz(*s, opts);
  EXPECT_TRUE(rep.failures.empty()) << rep.to_string();
  // Accepted = at least one op in the schedule applied; rejected covers
  // both structural garbage and schedules whose every op was refused.
  EXPECT_GT(rep.accepted, 0u);
  EXPECT_GT(rep.rejected, 0u);
}

TEST(FuzzOracles, KccSurfacePassesOnCurrentTree) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 60;
  auto s = make_kcc_surface();
  auto rep = run_fuzz(*s, opts);
  EXPECT_TRUE(rep.failures.empty()) << rep.to_string();
  EXPECT_GT(rep.accepted, 0u);
}

// Acceptance gate for the harness: re-introduce the pre-fix wrapping bounds
// check in the SMM handler and prove the oracles catch it, shrinking at
// least one repro to <= 64 attacker-controlled entry bytes (wire size minus
// the fixed 44-byte envelope).
TEST(FuzzSelftest, CatchesReintroducedWrappingBoundsBug) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 500;
  auto s = make_package_surface({.legacy_wrapping_bounds = true});
  auto rep = run_fuzz(*s, opts);
  ASSERT_FALSE(rep.failures.empty())
      << "oracles missed the legacy wrapping-bounds bug";
  size_t best_entry_bytes = SIZE_MAX;
  for (const auto& f : rep.failures) {
    ASSERT_GE(f.input.size(), 44u);
    ASSERT_LE(f.input.size(), f.original_size);
    best_entry_bytes = std::min(best_entry_bytes, f.input.size() - 44);
    // Every shrunk repro must still trip the same oracle when replayed.
    auto v = s->execute(f.input);
    ASSERT_TRUE(v.failure.has_value());
    EXPECT_EQ(v.failure->first, f.oracle);
  }
  EXPECT_LE(best_entry_bytes, 64u) << rep.to_string();
}

TEST(FuzzShrinker, ShrinksWhilePreservingTheOracle) {
  auto s = make_package_surface({.legacy_wrapping_bounds = true});
  // The PR 3 wrapping-taddr regression wire, padded with an extra valid
  // entry's worth of junk fields via a second entry — shrinking must keep
  // the tripped oracle while strictly reducing size.
  Bytes wire;
  for (const auto& [name, bytes] : seed_package_cases()) {
    if (name == "wrapping-taddr") wire = bytes;
  }
  ASSERT_FALSE(wire.empty());
  auto v = s->execute(wire);
  ASSERT_TRUE(v.failure.has_value()) << "legacy target accepted the repro";
  FuzzOptions opts;
  opts.seed = 1;
  Bytes shrunk = shrink_case(*s, wire, v.failure->first, opts);
  EXPECT_LE(shrunk.size(), wire.size());
  auto v2 = s->execute(shrunk);
  ASSERT_TRUE(v2.failure.has_value());
  EXPECT_EQ(v2.failure->first, v.failure->first);
}

TEST(FuzzCorpus, HexFileRoundTrip) {
  Bytes b;
  for (int i = 0; i < 100; ++i) b.push_back(static_cast<u8>(i * 7));
  std::string text = encode_hex_file(b, "two\nline comment");
  auto back = decode_hex_file(text);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, b);
  EXPECT_FALSE(decode_hex_file("abc").is_ok());   // odd digit count
  EXPECT_FALSE(decode_hex_file("zz").is_ok());    // non-hex
  auto empty = decode_hex_file("# only comments\n");
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty->empty());
}

TEST(FuzzCorpus, CheckedInCorpusMatchesCanonicalSeeds) {
  auto entries = load_corpus(KSHOT_CORPUS_DIR);
  ASSERT_TRUE(entries.is_ok()) << entries.status().to_string();
  auto find = [&](const std::string& surface, const std::string& file) {
    for (const auto& e : *entries) {
      if (e.surface == surface && e.file == file) return &e;
    }
    return static_cast<const CorpusEntry*>(nullptr);
  };
  for (const auto& [name, bytes] : seed_package_cases()) {
    const auto* e = find("package", name + ".hex");
    ASSERT_NE(e, nullptr) << "missing corpus file package/" << name
                          << ".hex — run kshot-sim fuzz --write-corpus";
    EXPECT_EQ(e->input, bytes) << "stale corpus file package/" << name;
  }
  for (const auto& [name, bytes] : seed_netsim_cases()) {
    const auto* e = find("netsim", name + ".hex");
    ASSERT_NE(e, nullptr) << "missing corpus file netsim/" << name;
    EXPECT_EQ(e->input, bytes) << "stale corpus file netsim/" << name;
  }
  for (const auto& [name, src] : seed_kcc_cases()) {
    const auto* e = find("kcc", name + ".ksrc");
    ASSERT_NE(e, nullptr) << "missing corpus file kcc/" << name;
    EXPECT_EQ(e->input, to_bytes(src)) << "stale corpus file kcc/" << name;
  }
  for (const auto& [name, bytes] : seed_attacker_cases()) {
    const auto* e = find("attacker_schedule", name + ".hex");
    ASSERT_NE(e, nullptr) << "missing corpus file attacker_schedule/" << name;
    EXPECT_EQ(e->input, bytes)
        << "stale corpus file attacker_schedule/" << name;
  }
  for (const auto& [name, bytes] : seed_lifecycle_cases()) {
    const auto* e = find("lifecycle", name + ".hex");
    ASSERT_NE(e, nullptr) << "missing corpus file lifecycle/" << name;
    EXPECT_EQ(e->input, bytes) << "stale corpus file lifecycle/" << name;
  }
  for (const auto& [name, bytes] : seed_synth_cases()) {
    const auto* e = find("synth", name + ".hex");
    ASSERT_NE(e, nullptr) << "missing corpus file synth/" << name;
    EXPECT_EQ(e->input, bytes) << "stale corpus file synth/" << name;
  }
}

TEST(FuzzCorpus, ReplaysCleanOnCurrentTree) {
  auto entries = load_corpus(KSHOT_CORPUS_DIR);
  ASSERT_TRUE(entries.is_ok()) << entries.status().to_string();
  ASSERT_GE(entries->size(), 25u);
  FuzzOptions opts;
  opts.seed = 1;
  auto reports = replay_corpus(*entries, opts);
  // attacker_schedule, kcc, lifecycle, netsim, package, synth (cve_synth)
  ASSERT_EQ(reports.size(), 6u);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.failures.empty()) << r.to_string();
  }
  // The valid package seeds must actually apply, not just parse: the two
  // bare packages plus the batched pair.
  for (const auto& r : reports) {
    if (r.surface == "package") EXPECT_EQ(r.accepted, 3u) << r.to_string();
    // Every checked-in lifecycle schedule lands at least one apply.
    if (r.surface == "lifecycle") {
      EXPECT_EQ(r.accepted, seed_lifecycle_cases().size()) << r.to_string();
    }
    // Every checked-in synth wire synthesizes a case passing all oracles.
    if (r.surface == "cve_synth") {
      EXPECT_EQ(r.accepted, seed_synth_cases().size()) << r.to_string();
    }
  }
}

TEST(FuzzCorpus, SeedWiresAreWellFormed) {
  // The "valid-*" seeds parse; the malformed ones fail with a clean Status
  // (never an unchecked crash path).
  for (const auto& [name, bytes] : seed_package_cases()) {
    if (name.rfind("batch", 0) == 0) {
      // Batch seeds are envelopes, not bare packages: the envelope must
      // split cleanly and every inner wire must be a package-sized blob.
      EXPECT_TRUE(patchtool::is_batch_wire(bytes)) << name;
      auto pkgs = patchtool::parse_batch(bytes);
      EXPECT_TRUE(pkgs.is_ok()) << name << ": " << pkgs.status().to_string();
      if (pkgs.is_ok()) EXPECT_EQ(pkgs->size(), 2u) << name;
      continue;
    }
    auto parsed = patchtool::parse_patchset(bytes);
    if (name.rfind("valid", 0) == 0 || name == "mixed-op" ||
        name == "rollback-on-fresh" || name.rfind("wrapping", 0) == 0) {
      EXPECT_TRUE(parsed.is_ok()) << name << ": " << parsed.status().to_string();
    } else {
      EXPECT_FALSE(parsed.is_ok()) << name << " should not parse";
    }
  }
}

TEST(FuzzSurfaces, FactoryResolvesNames) {
  EXPECT_NE(make_surface("package"), nullptr);
  EXPECT_NE(make_surface("netsim"), nullptr);
  EXPECT_NE(make_surface("kcc"), nullptr);
  EXPECT_NE(make_surface("attacker_schedule"), nullptr);
  EXPECT_NE(make_surface("lifecycle"), nullptr);
  EXPECT_EQ(make_surface("bogus"), nullptr);
}

TEST(FuzzSurfaces, TimeBudgetStopsEarly) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 1'000'000;     // would run for minutes
  opts.time_budget_s = 0.05;  // but the budget stops it almost immediately
  auto s = make_package_surface();
  auto rep = run_fuzz(*s, opts);
  EXPECT_TRUE(rep.budget_exhausted);
  EXPECT_LT(rep.cases, opts.iters);
}

}  // namespace
}  // namespace kshot::fuzz
