// Core KShot unit tests: the mem_RW mailbox, enclave ECALL sequencing, SMM
// handler status codes and bounds checks, introspection, and the
// orchestrator's error paths.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace kshot::core {
namespace {

std::unique_ptr<testbed::Testbed> boot(const char* id = "CVE-2014-0196",
                                       testbed::TestbedOptions opts = {}) {
  auto tb = testbed::Testbed::boot(cve::find_case(id), opts);
  EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
  return std::move(*tb);
}

// ---- Mailbox -----------------------------------------------------------------

TEST(Mailbox, RoundTripsFields) {
  auto t = boot();
  Mailbox mbox(t->machine().mem(), t->kernel().layout().mem_rw_base(),
               machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kBeginSession).is_ok());
  EXPECT_EQ(*mbox.read_command(), SmmCommand::kBeginSession);
  ASSERT_TRUE(mbox.write_staged_size(12345).is_ok());
  EXPECT_EQ(*mbox.read_staged_size(), 12345u);
  crypto::X25519Key k{};
  k[0] = 0xAA;
  ASSERT_TRUE(mbox.write_enclave_pub(k).is_ok());
  EXPECT_EQ(*mbox.read_enclave_pub(), k);
  ASSERT_TRUE(mbox.bump_heartbeat().is_ok());
  ASSERT_TRUE(mbox.bump_heartbeat().is_ok());
  EXPECT_EQ(*mbox.read_heartbeat(), 2u);
}

TEST(Mailbox, GarbageCommandReadsAsIdle) {
  auto t = boot();
  auto& mem = t->machine().mem();
  u64 base = t->kernel().layout().mem_rw_base();
  ASSERT_TRUE(
      mem.write_u64(base + MailboxLayout::kCommand, 0xFFFF,
                    machine::AccessMode::normal())
          .is_ok());
  Mailbox mbox(mem, base, machine::AccessMode::normal());
  EXPECT_EQ(*mbox.read_command(), SmmCommand::kIdle);
}

// ---- Enclave sequencing ------------------------------------------------------

TEST(Enclave, PreprocessWithoutFetchFails) {
  auto t = boot();
  auto r = t->kshot().enclave().preprocess();
  EXPECT_EQ(r.status().code(), Errc::kFailedPrecondition);
}

TEST(Enclave, SealWithoutPreprocessFails) {
  auto t = boot();
  crypto::X25519Key k{};
  auto r = t->kshot().enclave().seal_for_smm(k);
  EXPECT_EQ(r.status().code(), Errc::kFailedPrecondition);
}

TEST(Enclave, FinishFetchWithoutBeginFails) {
  auto t = boot();
  auto r = t->kshot().enclave().finish_fetch(Bytes{1, 2, 3});
  EXPECT_EQ(r.status().code(), Errc::kFailedPrecondition);
}

TEST(Enclave, UnknownEcallRejected) {
  auto t = boot();
  auto r = t->kshot().enclave().ecall(999, {});
  EXPECT_EQ(r.status().code(), Errc::kInvalidArgument);
}

TEST(Enclave, TamperedResponseRejected) {
  auto t = boot();
  const auto& c = t->cve_case();
  auto req = t->kshot().enclave().begin_fetch(
      c.id, netsim::PatchRequest::Op::kFetchPatch);
  ASSERT_TRUE(req.is_ok());
  auto resp = t->server().handle_request(*req);
  ASSERT_TRUE(resp.is_ok());
  (*resp)[resp->size() / 2] ^= 0x20;
  auto stats = t->kshot().enclave().finish_fetch(*resp);
  EXPECT_FALSE(stats.is_ok());
}

TEST(Enclave, MemXCursorAdvancesAndResets) {
  auto t = boot();
  EXPECT_EQ(t->kshot().enclave().mem_x_cursor(), 0u);
  ASSERT_TRUE(t->kshot().live_patch(t->cve_case().id).is_ok());
  u64 after_one = t->kshot().enclave().mem_x_cursor();
  EXPECT_GT(after_one, 0u);
  t->kshot().enclave().reset_mem_x_cursor();
  EXPECT_EQ(t->kshot().enclave().mem_x_cursor(), 0u);
}

// ---- SMM handler -------------------------------------------------------------

TEST(SmmHandler, ApplyWithoutSessionFails) {
  auto t = boot();
  Mailbox mbox(t->machine().mem(), t->kernel().layout().mem_rw_base(),
               machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_staged_size(64).is_ok());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kApplyPatch).is_ok());
  t->machine().trigger_smi();
  EXPECT_EQ(*mbox.read_status(), SmmStatus::kNoSession);
}

TEST(SmmHandler, ApplyWithNothingStagedFails) {
  auto t = boot();
  Mailbox mbox(t->machine().mem(), t->kernel().layout().mem_rw_base(),
               machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kBeginSession).is_ok());
  t->machine().trigger_smi();
  ASSERT_TRUE(mbox.write_staged_size(0).is_ok());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kApplyPatch).is_ok());
  t->machine().trigger_smi();
  EXPECT_EQ(*mbox.read_status(), SmmStatus::kNothingStaged);
}

TEST(SmmHandler, GarbageInMemWFailsMac) {
  auto t = boot();
  const auto& lay = t->kernel().layout();
  Mailbox mbox(t->machine().mem(), lay.mem_rw_base(),
               machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kBeginSession).is_ok());
  t->machine().trigger_smi();

  Bytes junk(256, 0x5A);
  ASSERT_TRUE(t->machine()
                  .mem()
                  .write(lay.mem_w_base(), junk, machine::AccessMode::normal())
                  .is_ok());
  ASSERT_TRUE(mbox.write_staged_size(junk.size()).is_ok());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kApplyPatch).is_ok());
  t->machine().trigger_smi();
  EXPECT_EQ(*mbox.read_status(), SmmStatus::kMacFailure);
  EXPECT_EQ(t->kshot().handler().patches_applied(), 0u);
}

TEST(SmmHandler, StagedSizeBeyondMemWRejected) {
  auto t = boot();
  Mailbox mbox(t->machine().mem(), t->kernel().layout().mem_rw_base(),
               machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kBeginSession).is_ok());
  t->machine().trigger_smi();
  ASSERT_TRUE(
      mbox.write_staged_size(t->kernel().layout().mem_w_size + 1).is_ok());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kApplyPatch).is_ok());
  t->machine().trigger_smi();
  EXPECT_EQ(*mbox.read_status(), SmmStatus::kBadPackage);
}

TEST(SmmHandler, RollbackWithNothingAppliedFails) {
  auto t = boot();
  auto rb = t->kshot().rollback();
  ASSERT_TRUE(rb.is_ok());
  EXPECT_FALSE(rb->success);
  EXPECT_EQ(rb->smm_status, SmmStatus::kNothingToRollback);
}

TEST(SmmHandler, HeartbeatAdvancesPerSmi) {
  auto t = boot();
  Mailbox mbox(t->machine().mem(), t->kernel().layout().mem_rw_base(),
               machine::AccessMode::normal());
  u64 before = mbox.read_heartbeat().value_or(0);
  ASSERT_TRUE(t->kshot().introspect().is_ok());
  EXPECT_EQ(*mbox.read_heartbeat(), before + 1);
}

TEST(SmmHandler, SessionKeysAreSingleUse) {
  // After a successful patch the same staged bytes must not apply again.
  auto t = boot();
  const auto& c = t->cve_case();
  ASSERT_TRUE(t->kshot().live_patch(c.id).is_ok());

  Mailbox mbox(t->machine().mem(), t->kernel().layout().mem_rw_base(),
               machine::AccessMode::normal());
  // mem_W still holds the last ciphertext; re-trigger apply.
  ASSERT_TRUE(mbox.write_command(SmmCommand::kApplyPatch).is_ok());
  t->machine().trigger_smi();
  EXPECT_EQ(*mbox.read_status(), SmmStatus::kNoSession);
}

TEST(SmmHandler, TimingsPopulatedAfterApply) {
  auto t = boot();
  ASSERT_TRUE(t->kshot().live_patch(t->cve_case().id).is_ok());
  const SmmPatchTimings& tm = t->kshot().handler().last_timings();
  EXPECT_GT(tm.keygen_ns, 0.0);
  EXPECT_GT(tm.decrypt_ns, 0.0);
  EXPECT_GT(tm.verify_ns, 0.0);
  EXPECT_GT(tm.apply_ns, 0.0);
  EXPECT_GT(tm.package_bytes, 0u);
  EXPECT_GT(tm.functions, 0u);
  EXPECT_GT(tm.modeled_cycles, 0u);
}

// ---- Introspection ---------------------------------------------------------------

TEST(Introspection, CleanAfterPatch) {
  auto t = boot();
  ASSERT_TRUE(t->kshot().live_patch(t->cve_case().id).is_ok());
  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->clean());
  EXPECT_EQ(rep->patches_checked, t->kshot().handler().installed().size());
}

TEST(Introspection, DetectsAndRepairsTrampolineReversion) {
  auto t = boot();
  const auto& c = t->cve_case();
  ASSERT_TRUE(t->kshot().live_patch(c.id).is_ok());
  ASSERT_FALSE(t->kshot().handler().installed().empty());
  const InstalledPatch& p = t->kshot().handler().installed()[0];

  // Kernel-privileged revert of the trampoline.
  Bytes original(p.original_entry.begin(), p.original_entry.end());
  ASSERT_TRUE(t->machine()
                  .mem()
                  .write(p.taddr + p.ftrace_off, original,
                         machine::AccessMode::normal())
                  .is_ok());
  // The exploit works again...
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops);

  // ...until introspection repairs the trampoline.
  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_EQ(rep->trampolines_reverted, 1u);
  exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
}

TEST(Introspection, RestoresReservedPageAttributes) {
  auto t = boot();
  const auto& lay = t->kernel().layout();
  ASSERT_TRUE(t->kshot().live_patch(t->cve_case().id).is_ok());
  // Rootkit re-opens mem_X via "page tables".
  t->machine().mem().set_attrs(lay.mem_x_base(), machine::kPageSize,
                               {true, true, true, 0});
  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_GE(rep->attrs_restored, 1u);
  auto attrs = t->machine().mem().attrs_at(lay.mem_x_base());
  EXPECT_TRUE(!attrs.read && !attrs.write && attrs.exec);
}

// ---- Orchestrator error paths -----------------------------------------------

TEST(Orchestrator, UnknownPatchIdPropagates) {
  auto t = boot();
  auto r = t->kshot().live_patch("CVE-0000-0000");
  ASSERT_FALSE(r.is_ok());
}

TEST(Orchestrator, SecondInstallFails) {
  auto t = boot();
  EXPECT_EQ(t->kshot().install().code(), Errc::kFailedPrecondition);
}

TEST(Orchestrator, UninstalledKshotRefusesEverything) {
  auto t = boot("CVE-2014-0196", {.layout = {}, .seed = 0x7777,
                                  .install_kshot = false,
                                  .workload_threads = 0});
  EXPECT_FALSE(t->kshot().live_patch("CVE-2014-0196").is_ok());
  EXPECT_FALSE(t->kshot().rollback().is_ok());
  EXPECT_FALSE(t->kshot().introspect().is_ok());
}

TEST(Orchestrator, IsPatchedReflectsState) {
  auto t = boot();
  const auto& c = t->cve_case();
  EXPECT_FALSE(t->kshot().is_patched(c.entry_function));
  ASSERT_TRUE(t->kshot().live_patch(c.id).is_ok());
  EXPECT_TRUE(t->kshot().is_patched(c.entry_function));
  ASSERT_TRUE(t->kshot().rollback().is_ok());
  EXPECT_FALSE(t->kshot().is_patched(c.entry_function));
}

TEST(Orchestrator, TcbIsSmallComparedToKernel) {
  auto t = boot();
  EXPECT_LT(t->kshot().tcb_bytes(),
            t->kernel().image().text.size() + 512 * 1024);
  EXPECT_GT(t->kshot().tcb_bytes(), 0u);
}

TEST(Orchestrator, DosCheckHealthyAfterPatch) {
  auto t = boot();
  ASSERT_TRUE(t->kshot().live_patch(t->cve_case().id).is_ok());
  auto rep = t->kshot().dos_check();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->smm_alive);
  EXPECT_TRUE(rep->staging_observed);
  EXPECT_FALSE(rep->dos_suspected);
}

TEST(Orchestrator, DosCheckFreshInstallIsNotSuspicious) {
  // A deployment that never attempted a patch has nothing contradictory to
  // report: absence of staging is only a DoS once staging was *attempted*.
  auto t = boot();
  auto rep = t->kshot().dos_check();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->smm_alive);
  EXPECT_FALSE(rep->staging_attempted);
  EXPECT_FALSE(rep->staging_observed);
  EXPECT_FALSE(rep->dos_suspected);
}

TEST(Orchestrator, DosCheckDetectsBlockedStaging) {
  // A rootkit gates SMI delivery just as the helper app stages the sealed
  // package: the helper tried, SMM never saw a staging command, and the
  // stale-echo check stops the pipeline from trusting the old status word.
  auto t = boot();
  t->kshot().set_stage_tamperer(
      [&](Bytes&) { t->machine().set_smi_blocked(true); });
  auto r = t->kshot().live_patch(t->cve_case().id);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::kAborted);
  t->kshot().clear_stage_tamperer();

  // While SMIs stay gated, SMM is simply unreachable.
  auto rep = t->kshot().dos_check();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_FALSE(rep->smm_alive);
  EXPECT_TRUE(rep->staging_attempted);
  EXPECT_FALSE(rep->staging_observed);
  EXPECT_TRUE(rep->dos_suspected);

  // Even after the rootkit re-enables SMIs to hide, the attempted-vs-
  // observed contradiction persists: SMM-side counters are ground truth.
  t->machine().set_smi_blocked(false);
  auto rep2 = t->kshot().dos_check();
  ASSERT_TRUE(rep2.is_ok());
  EXPECT_TRUE(rep2->smm_alive);
  EXPECT_TRUE(rep2->dos_suspected);
}

TEST(Orchestrator, ReportTimingsPopulated) {
  auto t = boot();
  auto r = t->kshot().live_patch(t->cve_case().id);
  ASSERT_TRUE(r.is_ok());
  EXPECT_GT(r->sgx.fetch_us, 0.0);
  EXPECT_GT(r->sgx.preprocess_us, 0.0);
  EXPECT_GT(r->sgx.passing_us, 0.0);
  EXPECT_GT(r->smm.keygen_us, 0.0);
  EXPECT_GT(r->smm.switch_us, 0.0);
  // Modeled downtime includes 2 SMI round trips (~69.2us each at 3 GHz).
  EXPECT_GT(r->smm.modeled_total_us, 2 * 34.6 - 1);
}

}  // namespace
}  // namespace kshot::core
