// Network-path tests: the latency/tamper channel, protocol round trips, and
// the patch server's attestation + compatibility checks.
#include <gtest/gtest.h>

#include "cve/suite.hpp"
#include "fuzz/fuzz.hpp"
#include "netsim/patch_server.hpp"
#include "testbed/testbed.hpp"

namespace kshot::netsim {
namespace {

TEST(Channel, LatencyModelScalesWithSize) {
  Channel::LinkModel model;
  model.fixed_latency_us = 10;
  model.bytes_per_us = 100;
  Channel ch(model);
  ch.transfer(Bytes(1000, 0));
  EXPECT_DOUBLE_EQ(ch.last_latency_us(), 10 + 1000 / 100.0);
  ch.transfer(Bytes(0));
  EXPECT_DOUBLE_EQ(ch.last_latency_us(), 10.0);
  EXPECT_EQ(ch.messages(), 2u);
  EXPECT_EQ(ch.bytes_moved(), 1000u);
}

TEST(Channel, TampererSeesAndMutates) {
  Channel ch;
  int calls = 0;
  ch.set_tamperer([&](Bytes& b) {
    ++calls;
    if (!b.empty()) b[0] = 0xFF;
  });
  Bytes out = ch.transfer({1, 2, 3});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(out[0], 0xFF);
  ch.clear_tamperer();
  out = ch.transfer({1});
  EXPECT_EQ(out[0], 1);
}

TEST(Protocol, OsInfoRoundTrip) {
  kernel::OsInfo info;
  info.version = "sim-3.14";
  info.text_base = 0x100000;
  info.data_base = 0x400000;
  info.ftrace = true;
  info.measurement[0] = 0xAB;
  auto back = deserialize_os_info(serialize_os_info(info));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->version, info.version);
  EXPECT_EQ(back->text_base, info.text_base);
  EXPECT_EQ(back->measurement, info.measurement);
}

TEST(Protocol, RequestRoundTrip) {
  PatchRequest req;
  req.op = PatchRequest::Op::kFetchRollback;
  req.patch_id = "CVE-2016-5195";
  req.os.version = "sim-4.4";
  req.client_pub[0] = 7;
  req.attestation.enclave_id = 3;
  req.attestation.mrenclave[1] = 9;
  auto back = PatchRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->op, req.op);
  EXPECT_EQ(back->patch_id, req.patch_id);
  EXPECT_EQ(back->client_pub, req.client_pub);
  EXPECT_EQ(back->attestation.enclave_id, 3);
}

TEST(Protocol, ResponseRoundTrip) {
  PatchResponse resp;
  resp.server_pub[31] = 0x44;
  resp.sealed_package = {9, 8, 7};
  auto back = PatchResponse::deserialize(resp.serialize());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->server_pub, resp.server_pub);
  EXPECT_EQ(back->sealed_package, resp.sealed_package);
}

TEST(Protocol, TruncatedRequestRejected) {
  PatchRequest req;
  req.patch_id = "x";
  Bytes wire = req.serialize();
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(PatchRequest::deserialize(wire).is_ok());
}

// ---- Patch server ------------------------------------------------------------

TEST(Server, BuildsWorkingPatchset) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  auto set = (*tb)->server().build_patchset(c.id, (*tb)->kernel().os_info());
  ASSERT_TRUE(set.is_ok()) << set.status().to_string();
  EXPECT_FALSE(set->patches.empty());
  EXPECT_EQ(set->id, c.id);
  EXPECT_EQ(set->kernel_version, c.kernel);
}

TEST(Server, UnknownPatchRejected) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  auto set = (*tb)->server().build_patchset("CVE-9999-0000",
                                            (*tb)->kernel().os_info());
  EXPECT_EQ(set.status().code(), Errc::kNotFound);
}

TEST(Server, MeasurementDriftRejected) {
  // If the target's kernel doesn't match what the server rebuilds from the
  // reported configuration, the patch must be refused.
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  kernel::OsInfo info = (*tb)->kernel().os_info();
  info.measurement[0] ^= 1;
  auto set = (*tb)->server().build_patchset(c.id, info);
  EXPECT_EQ(set.status().code(), Errc::kFailedPrecondition);
}

TEST(Server, UnattestedRequestRejected) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());

  PatchRequest req;
  req.op = PatchRequest::Op::kFetchPatch;
  req.patch_id = c.id;
  req.os = (*tb)->kernel().os_info();
  // No valid report: the MAC is garbage.
  auto resp = (*tb)->server().handle_request(req.serialize());
  ASSERT_FALSE(resp.is_ok());
  EXPECT_EQ(resp.status().code(), Errc::kPermissionDenied);
  EXPECT_EQ((*tb)->server().rejected_requests(), 1u);
}

TEST(Server, ReportMustBindSessionKey) {
  // A valid report replayed with a different DH key must be rejected
  // (otherwise a MITM could substitute its own key).
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;

  auto req_wire = t.kshot().enclave().begin_fetch(
      c.id, PatchRequest::Op::kFetchPatch);
  ASSERT_TRUE(req_wire.is_ok());
  auto req = PatchRequest::deserialize(*req_wire);
  ASSERT_TRUE(req.is_ok());
  req->client_pub[0] ^= 1;  // MITM swaps the key
  auto resp = t.server().handle_request(req->serialize());
  ASSERT_FALSE(resp.is_ok());
  EXPECT_EQ(resp.status().code(), Errc::kPermissionDenied);
}

TEST(Server, ServesSealedPackageToAttestedEnclave) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;

  auto req_wire = t.kshot().enclave().begin_fetch(
      c.id, PatchRequest::Op::kFetchPatch);
  ASSERT_TRUE(req_wire.is_ok());
  auto resp_wire = t.server().handle_request(*req_wire);
  ASSERT_TRUE(resp_wire.is_ok()) << resp_wire.status().to_string();
  auto stats = t.kshot().enclave().finish_fetch(*resp_wire);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_GT(stats->functions, 0u);
  EXPECT_GT(stats->code_bytes, 0u);
}

TEST(Server, PrePostImagesShareLayout) {
  const auto& c = cve::find_case("CVE-2016-5195");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  auto opts = (*tb)->compile_options();
  auto pre = (*tb)->server().build_pre_image(c.id, opts);
  auto post = (*tb)->server().build_post_image(c.id, opts);
  ASSERT_TRUE(pre.is_ok() && post.is_ok());
  EXPECT_EQ(pre->text_base, post->text_base);
  // Shared globals keep their addresses.
  for (const auto& g : pre->globals) {
    const kcc::GlobalSym* pg = post->find_global(g.name);
    if (pg) {
      EXPECT_EQ(pg->addr, g.addr) << g.name;
    }
  }
}

// ---- Fuzz-found decoder regressions -----------------------------------------
//
// Found by `kshot-sim fuzz --surface netsim`: all three deserializers used
// to accept frames with trailing bytes, so two distinct wires named the
// same message. Each is now rejected with an exhaustion check.

TEST(ProtocolRegression, OsInfoTrailingBytesRejected) {
  kernel::OsInfo info;
  info.version = "sim-4.4";
  info.text_base = 0x100000;
  info.data_base = 0x400000;
  Bytes wire = serialize_os_info(info);
  ASSERT_TRUE(deserialize_os_info(wire).is_ok());
  wire.push_back(0);
  auto r = deserialize_os_info(wire);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::kInvalidArgument);
}

TEST(ProtocolRegression, RequestTrailingBytesRejected) {
  PatchRequest req;
  req.op = PatchRequest::Op::kFetchPatch;
  req.patch_id = "CVE-2014-0196";
  Bytes wire = req.serialize();
  ASSERT_TRUE(PatchRequest::deserialize(wire).is_ok());
  wire.push_back(0xEE);
  EXPECT_FALSE(PatchRequest::deserialize(wire).is_ok());
}

TEST(ProtocolRegression, ResponseTrailingBytesRejected) {
  PatchResponse resp;
  resp.sealed_package = {1, 2, 3};
  Bytes wire = resp.serialize();
  ASSERT_TRUE(PatchResponse::deserialize(wire).is_ok());
  wire.push_back(0);
  EXPECT_FALSE(PatchResponse::deserialize(wire).is_ok());
}

// ---- Corpus frames through the real handshake -------------------------------
//
// Replays the checked-in netsim regression corpus (tests/corpus/netsim/*)
// against a live booted deployment — the same path `ctest`'s fuzz corpus
// replay takes, but asserted frame by frame here so a decoder regression
// names the offending file.

TEST(ProtocolRegression, CorpusFramesAgainstLiveHandshake) {
  auto entries = fuzz::load_corpus(KSHOT_CORPUS_DIR);
  ASSERT_TRUE(entries.is_ok()) << entries.status().to_string();
  auto surface = fuzz::make_netsim_surface();
  size_t replayed = 0;
  for (const auto& e : *entries) {
    if (e.surface != "netsim") continue;
    auto v = surface->execute(e.input);
    EXPECT_FALSE(v.failure.has_value())
        << e.file << ": oracle " << v.failure->first << ": "
        << v.failure->second;
    ++replayed;
  }
  // The seed corpus ships at least: bad-op, empty/truncated frames, the
  // trailing-garbage regression, flip scripts, and truncations.
  EXPECT_GE(replayed, 9u);
}

TEST(ProtocolRegression, TamperedSealedPackageFailsFinishFetch) {
  // End-to-end handshake with a one-byte flip inside the sealed package
  // region of the response: the enclave must refuse it (AEAD MAC).
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;
  auto req = t.kshot().enclave().begin_fetch(c.id,
                                             PatchRequest::Op::kFetchPatch);
  ASSERT_TRUE(req.is_ok());
  auto resp = t.server().handle_request(*req);
  ASSERT_TRUE(resp.is_ok());
  Bytes mutated = *resp;
  mutated[mutated.size() / 2] ^= 0x40;  // inside the sealed package
  EXPECT_FALSE(t.kshot().enclave().finish_fetch(mutated).is_ok());
  // And the unmodified response still verifies on a fresh session.
  auto req2 = t.kshot().enclave().begin_fetch(c.id,
                                              PatchRequest::Op::kFetchPatch);
  ASSERT_TRUE(req2.is_ok());
  auto resp2 = t.server().handle_request(*req2);
  ASSERT_TRUE(resp2.is_ok());
  EXPECT_TRUE(t.kshot().enclave().finish_fetch(*resp2).is_ok());
}

}  // namespace
}  // namespace kshot::netsim
