// Kernel tracing coexistence (paper §V-A "Supporting Kernel Tracing"): the
// dynamic tracer owns the first 5 bytes of a traced function; KShot's
// trampoline owns the next 5. Each must keep working whatever order they
// are enabled in.
#include <gtest/gtest.h>

#include "kernel/ftrace.hpp"
#include "testbed/testbed.hpp"

namespace kshot::kernel {
namespace {

using testbed::Testbed;

std::unique_ptr<Testbed> boot(const char* id = "CVE-2014-0196") {
  auto tb = Testbed::boot(cve::find_case(id), {});
  EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
  return std::move(*tb);
}

TEST(Ftrace, StubCountsCalls) {
  auto t = boot();
  FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  ASSERT_TRUE(ftrace.enable("sys_hash").is_ok());
  EXPECT_TRUE(ftrace.is_traced("sys_hash"));

  auto r = t->run_syscall(cve::kSysHash, {7, 0, 0, 0, 0});
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r->oops);
  EXPECT_EQ(*ftrace.hits(), 1u);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t->run_syscall(cve::kSysHash, {7, 0, 0, 0, 0}).is_ok());
  }
  EXPECT_EQ(*ftrace.hits(), 6u);
}

TEST(Ftrace, TracingPreservesResults) {
  auto t = boot();
  auto before = t->run_syscall(cve::kSysHash, {41, 0, 0, 0, 0});
  FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  ASSERT_TRUE(ftrace.enable("sys_hash").is_ok());
  auto after = t->run_syscall(cve::kSysHash, {41, 0, 0, 0, 0});
  ASSERT_TRUE(before.is_ok() && after.is_ok());
  EXPECT_EQ(before->value, after->value);
}

TEST(Ftrace, DisableRestoresPad) {
  auto t = boot();
  FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  const kcc::Symbol* sym = t->kernel().image().find_symbol("sys_hash");
  ASSERT_TRUE(ftrace.enable("sys_hash").is_ok());
  ASSERT_TRUE(ftrace.disable("sys_hash").is_ok());
  auto bytes = t->machine().mem().read_bytes(sym->addr, 5,
                                             machine::AccessMode::normal());
  ASSERT_TRUE(bytes.is_ok());
  EXPECT_EQ(*bytes, (Bytes{0x0F, 0x1F, 0x44, 0x00, 0x00}));
  u64 hits_before = *ftrace.hits();
  ASSERT_TRUE(t->run_syscall(cve::kSysHash, {1, 0, 0, 0, 0}).is_ok());
  EXPECT_EQ(*ftrace.hits(), hits_before);
}

TEST(Ftrace, NotraceFunctionRejected) {
  auto t = boot();
  FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  // Sweep-case entry functions under 128B are notrace; use one here.
  EXPECT_EQ(ftrace.enable("no_such_fn").code(), Errc::kNotFound);
  EXPECT_EQ(ftrace.disable("sys_hash").code(), Errc::kFailedPrecondition);
}

TEST(Ftrace, PatchThenTrace) {
  auto t = boot();
  const auto& c = t->cve_case();
  ASSERT_TRUE(t->kshot().live_patch(c.id)->success);

  FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  ASSERT_TRUE(ftrace.enable(c.entry_function).is_ok());

  // Tracing the *patched* function: the fentry call runs, then the
  // trampoline redirects to the patched body.
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
  EXPECT_EQ(exploit->value, cve::kEinval);
  EXPECT_GE(*ftrace.hits(), 1u);
}

TEST(Ftrace, TraceThenPatch) {
  auto t = boot();
  const auto& c = t->cve_case();
  FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  ASSERT_TRUE(ftrace.enable(c.entry_function).is_ok());

  ASSERT_TRUE(t->kshot().live_patch(c.id)->success);

  // Patch applied after the tracer: both still work.
  u64 hits_before = *ftrace.hits();
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
  EXPECT_GT(*ftrace.hits(), hits_before);

  auto benign = t->run_benign();
  ASSERT_TRUE(benign.is_ok());
  EXPECT_FALSE(benign->oops);
}

TEST(Ftrace, IntrospectionDoesNotFightTracer) {
  // The SMM introspection sweep must treat the tracer-owned pad bytes as
  // kernel-mutable and only guard its own trampoline bytes.
  auto t = boot();
  const auto& c = t->cve_case();
  ASSERT_TRUE(t->kshot().live_patch(c.id)->success);

  FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  ASSERT_TRUE(ftrace.enable(c.entry_function).is_ok());

  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->clean()) << "introspection treated tracing as tampering";
  // And tracing still works afterwards.
  ASSERT_TRUE(t->run_benign().is_ok());
  EXPECT_GE(*ftrace.hits(), 1u);
}

TEST(Ftrace, RollbackLeavesTracingIntact) {
  auto t = boot();
  const auto& c = t->cve_case();
  FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  ASSERT_TRUE(ftrace.enable(c.entry_function).is_ok());

  ASSERT_TRUE(t->kshot().live_patch(c.id)->success);
  ASSERT_TRUE(t->kshot().rollback()->success);

  u64 hits_before = *ftrace.hits();
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops);  // rollback restored the vulnerable body
  EXPECT_GT(*ftrace.hits(), hits_before);  // but tracing survived
}

}  // namespace
}  // namespace kshot::kernel
