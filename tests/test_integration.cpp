// Cross-module integration: live patching under active workloads, patch /
// rollback / re-patch cycles, multiple sequential patches, the large-patch
// memory layout, and virtual-time accounting across the whole pipeline.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace kshot {
namespace {

using testbed::Testbed;
using testbed::TestbedOptions;

TEST(Integration, PatchUnderActiveWorkload) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = Testbed::boot(c, {.workload_threads = 6});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  Testbed& t = **tb;

  // Warm up the workload; several threads will be suspended mid-syscall.
  t.scheduler().run(500, 32);
  u64 served_before = t.scheduler().stats().syscalls_completed;
  ASSERT_GT(served_before, 0u);

  auto report = t.kshot().live_patch(c.id);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  ASSERT_TRUE(report->success);

  // The workload continues unharmed — no oopses, progress continues.
  t.scheduler().run(1000, 32);
  EXPECT_GT(t.scheduler().stats().syscalls_completed, served_before);
  EXPECT_EQ(t.scheduler().stats().oopses, 0u);
  EXPECT_TRUE(t.kernel().oops_log().empty());

  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
}

TEST(Integration, ThreadSuspendedInsideTargetSurvivesPatch) {
  // The consistency case §IV/§V-A care about: a thread is parked *inside*
  // the function being patched; trampoline-at-entry leaves the old body
  // intact so the in-flight call completes on the old code, and the next
  // call takes the patch.
  const auto& c = cve::find_case("CVE-2016-7914");  // big body, easy to park
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  auto tid = t.scheduler().spawn({{c.syscall_nr, c.benign_args}}, true);
  ASSERT_TRUE(tid.is_ok());
  const kcc::Symbol* sym = t.kernel().image().find_symbol(c.entry_function);
  bool inside = false;
  for (int i = 0; i < 2000 && !inside; ++i) {
    t.scheduler().run(1, 11);
    const auto& th = t.scheduler().thread(*tid);
    u64 rip = th.saved_ctx().rip;
    inside = th.mid_syscall() && rip > sym->addr + 10 &&
             rip < sym->addr + sym->size;
  }
  ASSERT_TRUE(inside);

  ASSERT_TRUE(t.kshot().live_patch(c.id)->success);

  // The suspended thread finishes its old-code call and keeps looping on
  // the patched function with no faults.
  t.scheduler().run(3000, 64);
  EXPECT_EQ(t.scheduler().stats().oopses, 0u);
  EXPECT_GT(t.scheduler().thread(*tid).syscalls_completed(), 1u);
}

TEST(Integration, PatchRollbackRepatchCycle) {
  const auto& c = cve::find_case("CVE-2015-5707");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  for (int round = 0; round < 3; ++round) {
    auto rep = t.kshot().live_patch(c.id);
    ASSERT_TRUE(rep.is_ok()) << "round " << round;
    ASSERT_TRUE(rep->success);
    auto exploit = t.run_exploit();
    ASSERT_TRUE(exploit.is_ok());
    EXPECT_FALSE(exploit->oops) << "round " << round;

    ASSERT_TRUE(t.kshot().rollback()->success);
    exploit = t.run_exploit();
    ASSERT_TRUE(exploit.is_ok());
    EXPECT_TRUE(exploit->oops) << "round " << round;
  }
}

TEST(Integration, SequentialDistinctPatchesAccumulate) {
  // Two CVEs from the same kernel version, patched one after the other on
  // one machine: both exploits must end up dead.
  const auto& c1 = cve::find_case("CVE-2014-0196");
  const auto& c2 = cve::find_case("CVE-2014-5077");
  // Boot with c1's kernel and teach the server both patches against a
  // combined source.
  cve::CveCase combined = c1;
  // Append c2's unique functions to both sources.
  std::string extra_pre =
      c2.pre_source.substr(cve::base_kernel_source().size());
  std::string extra_post =
      c2.post_source.substr(cve::base_kernel_source().size());
  combined.pre_source = c1.pre_source + extra_pre;
  combined.post_source = c1.post_source + extra_pre;  // only c1 fixed

  auto tb = Testbed::boot(combined, {});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  Testbed& t = **tb;
  ASSERT_TRUE(t.kernel().register_syscall(c2.syscall_nr, c2.entry_function)
                  .is_ok());

  // Second patch: the running kernel is combined.pre (both vulnerable), so
  // it is built as pre = combined.pre, post = c1-vulnerable + c2-fixed.
  t.server().add_patch({"SECOND", combined.kernel, combined.pre_source,
                        c1.pre_source + extra_post});

  // Patch #1 (fixes c1):
  ASSERT_TRUE(t.kshot().live_patch(c1.id)->success);
  auto e1 = t.run_syscall(c1.syscall_nr, c1.exploit_args);
  ASSERT_TRUE(e1.is_ok());
  EXPECT_FALSE(e1->oops);
  auto e2 = t.run_syscall(c2.syscall_nr, c2.exploit_args);
  ASSERT_TRUE(e2.is_ok());
  EXPECT_TRUE(e2->oops) << "c2 should still be vulnerable";

  // Patch #2 — but the kernel text changed (trampoline) since boot, so the
  // server's measurement check would fail if we naively re-sent os_info.
  // KShot handles this because os_info was captured at boot (§V-B assumes
  // boot-time collection).
  ASSERT_TRUE(t.kshot().live_patch("SECOND")->success);
  e2 = t.run_syscall(c2.syscall_nr, c2.exploit_args);
  ASSERT_TRUE(e2.is_ok());
  EXPECT_FALSE(e2->oops);
  // And c1's fix is still in place.
  e1 = t.run_syscall(c1.syscall_nr, c1.exploit_args);
  ASSERT_TRUE(e1.is_ok());
  EXPECT_FALSE(e1->oops);
}

TEST(Integration, LargePatchLayoutWorks) {
  const auto& c = cve::find_case("CVE-2016-7914");
  TestbedOptions opts;
  opts.layout = kernel::MemoryLayout::for_large_patches();
  auto tb = Testbed::boot(c, opts);
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  auto rep = (*tb)->kshot().live_patch(c.id);
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->success);
}

TEST(Integration, DowntimeIsOnlySmmResidency) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  u64 smm_before = t.machine().smm_cycles();
  u64 smi_before = t.machine().smi_count();
  auto rep = t.kshot().live_patch(c.id);
  ASSERT_TRUE(rep.is_ok());
  EXPECT_EQ(t.machine().smi_count(), smi_before + 2);  // begin + apply
  EXPECT_EQ(rep->downtime_cycles, t.machine().smm_cycles() - smm_before);
  // Modeled downtime stays well under a millisecond for a small patch
  // (paper: ~50us for ~1KB patches).
  EXPECT_LT(rep->smm.modeled_total_us, 1000.0);
}

TEST(Integration, EnclaveStateInvisibleToKernelScan) {
  // A kernel scan over the whole EPC range must not find the patch
  // plaintext staged by the enclave.
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;
  ASSERT_TRUE(t.kshot().live_patch(c.id)->success);

  const auto& lay = t.kernel().layout();
  for (PhysAddr a = lay.epc_base; a < lay.epc_base + lay.epc_size;
       a += machine::kPageSize * 64) {
    auto r = t.machine().mem().read_bytes(a, 8,
                                          machine::AccessMode::normal());
    if (r.is_ok()) {
      // Unallocated EPC slack is ordinary memory — but allocated enclave
      // pages must be opaque. Verify via attrs.
      EXPECT_EQ(t.machine().mem().attrs_at(a).epc_owner, 0);
    }
  }
}

TEST(Integration, HundredPatchRollbackCyclesStayStable) {
  const auto& c = cve::find_case("CVE-2017-17053");
  auto tb = Testbed::boot(c, {.workload_threads = 2});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;
  for (int i = 0; i < 100; ++i) {
    auto rep = t.kshot().live_patch(c.id);
    ASSERT_TRUE(rep.is_ok()) << "iteration " << i << ": "
                             << rep.status().to_string();
    ASSERT_TRUE(rep->success) << "iteration " << i;
    ASSERT_TRUE(t.kshot().rollback()->success) << "iteration " << i;
    t.scheduler().run(20, 32);
  }
  EXPECT_EQ(t.scheduler().stats().oopses, 0u);
  EXPECT_EQ(t.kshot().handler().patches_applied(), 100u);
  EXPECT_EQ(t.kshot().handler().rollbacks(), 100u);
}

}  // namespace
}  // namespace kshot
