// Instruction set tests: encoding round trips, the exact x86 byte patterns
// live patching depends on, the assembler's label fixups, and relocation
// scanning/retargeting.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/isa.hpp"
#include "isa/reloc.hpp"

namespace kshot::isa {
namespace {

Bytes encode_one(const Instr& in) {
  Bytes out;
  encode(in, out);
  return out;
}

TEST(Encoding, JmpIsRealX86) {
  Bytes b = encode_one({Op::kJmp, 0, 0, 0x11223344});
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 0xE9);
  EXPECT_EQ(b[1], 0x44);
  EXPECT_EQ(b[2], 0x33);
  EXPECT_EQ(b[3], 0x22);
  EXPECT_EQ(b[4], 0x11);
}

TEST(Encoding, CallIsRealX86) {
  Bytes b = encode_one({Op::kCall, 0, 0, -5});
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 0xE8);
  EXPECT_EQ(b[1], 0xFB);
  EXPECT_EQ(b[4], 0xFF);
}

TEST(Encoding, FtracePadIsFiveByteNop) {
  Bytes b = encode_one({Op::kNop5});
  EXPECT_EQ(b, (Bytes{0x0F, 0x1F, 0x44, 0x00, 0x00}));
}

TEST(Encoding, SingleByteOps) {
  EXPECT_EQ(encode_one({Op::kRet}), Bytes{0xC3});
  EXPECT_EQ(encode_one({Op::kNop}), Bytes{0x90});
  EXPECT_EQ(encode_one({Op::kInt3}), Bytes{0xCC});
  EXPECT_EQ(encode_one({Op::kHlt}), Bytes{0xF4});
  EXPECT_EQ(encode_one({Op::kUd2}), (Bytes{0x0F, 0x0B}));
}

// Round-trip every opcode through encode/decode.
struct RoundTripCase {
  Instr in;
};

class EncodeDecodeRoundTrip : public ::testing::TestWithParam<Instr> {};

TEST_P(EncodeDecodeRoundTrip, RoundTrips) {
  Instr in = GetParam();
  Bytes b = encode_one(in);
  EXPECT_EQ(b.size(), encoded_len(in.op));
  auto d = decode(b);
  ASSERT_TRUE(d.is_ok()) << d.status().to_string();
  EXPECT_EQ(d->len, b.size());
  EXPECT_EQ(d->instr, in);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EncodeDecodeRoundTrip,
    ::testing::Values(
        Instr{Op::kNop, 0, 0, 0}, Instr{Op::kNop5, 0, 0, 0},
        Instr{Op::kJmp, 0, 0, -1234}, Instr{Op::kCall, 0, 0, 77},
        Instr{Op::kRet, 0, 0, 0}, Instr{Op::kInt3, 0, 0, 0},
        Instr{Op::kHlt, 0, 0, 0}, Instr{Op::kUd2, 0, 0, 0},
        Instr{Op::kMov, 3, 4, 0}, Instr{Op::kMovi, 5, 0, -42},
        Instr{Op::kAdd, 1, 2, 0}, Instr{Op::kSub, 15, 0, 0},
        Instr{Op::kMul, 7, 7, 0}, Instr{Op::kDiv, 2, 3, 0},
        Instr{Op::kMod, 4, 5, 0}, Instr{Op::kXor, 6, 7, 0},
        Instr{Op::kAnd, 8, 9, 0}, Instr{Op::kOr, 10, 11, 0},
        Instr{Op::kShl, 12, 13, 0}, Instr{Op::kShr, 14, 15, 0},
        Instr{Op::kAddi, 1, 0, 100}, Instr{Op::kSubi, 2, 0, -100},
        Instr{Op::kMuli, 3, 0, 7}, Instr{Op::kDivi, 4, 0, 2},
        Instr{Op::kModi, 5, 0, 3}, Instr{Op::kXori, 6, 0, 0xFF},
        Instr{Op::kAndi, 7, 0, 0xF0}, Instr{Op::kOri, 8, 0, 1},
        Instr{Op::kShli, 9, 0, 4}, Instr{Op::kShri, 10, 0, 8},
        Instr{Op::kLoadG, 1, 0, 0x400000}, Instr{Op::kStoreG, 2, 0, 0x400008},
        Instr{Op::kLoadR, 3, 14, -16}, Instr{Op::kStoreR, 4, 14, 24},
        Instr{Op::kCmp, 1, 2, 0}, Instr{Op::kCmpi, 3, 0, 4096},
        Instr{Op::kJe, 0, 0, 10}, Instr{Op::kJne, 0, 0, -10},
        Instr{Op::kJl, 0, 0, 5}, Instr{Op::kJge, 0, 0, 5},
        Instr{Op::kJg, 0, 0, 5}, Instr{Op::kJle, 0, 0, 5},
        Instr{Op::kPush, 14, 0, 0}, Instr{Op::kPop, 14, 0, 0},
        Instr{Op::kTrap, 0, 0, 99}));

TEST(Decode, RejectsUnknownOpcode) {
  Bytes b = {0xFF};
  EXPECT_FALSE(decode(b).is_ok());
}

TEST(Decode, RejectsTruncated) {
  Bytes b = {0xE9, 0x01, 0x02};  // jmp needs 5 bytes
  EXPECT_FALSE(decode(b).is_ok());
}

TEST(Decode, RejectsBadRegister) {
  Bytes b = {0x10, 16, 0};  // mov r16, r0 — r16 doesn't exist
  EXPECT_FALSE(decode(b).is_ok());
}

TEST(Decode, RejectsBad0FEscape) {
  Bytes b = {0x0F, 0x99, 0, 0, 0};
  EXPECT_FALSE(decode(b).is_ok());
}

TEST(Decode, EmptyInput) { EXPECT_FALSE(decode({}).is_ok()); }

// ---- Assembler ----------------------------------------------------------------

TEST(Assembler, ForwardBranchFixup) {
  Assembler a;
  Label skip = a.new_label();
  a.movi(0, 1);
  a.jmp(skip);
  a.movi(0, 2);  // skipped
  a.bind(skip);
  a.ret();
  auto code = a.finish();
  ASSERT_TRUE(code.is_ok());

  // Decode the jmp and verify it jumps over the 6-byte movi.
  auto d = decode(ByteSpan(*code).subspan(6));
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->instr.op, Op::kJmp);
  EXPECT_EQ(d->instr.imm, 6);
}

TEST(Assembler, BackwardBranch) {
  Assembler a;
  Label top = a.new_label();
  a.bind(top);
  a.nop();
  a.jmp(top);
  auto code = a.finish();
  ASSERT_TRUE(code.is_ok());
  auto d = decode(ByteSpan(*code).subspan(1));
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->instr.imm, -6);  // back over jmp(5) + nop(1)
}

TEST(Assembler, UnboundLabelFails) {
  Assembler a;
  Label l = a.new_label();
  a.jmp(l);
  EXPECT_FALSE(a.finish().is_ok());
}

TEST(Assembler, ExtRefRecorded) {
  Assembler a;
  a.call_sym("k_hash");
  a.ret();
  auto code = a.finish();
  ASSERT_TRUE(code.is_ok());
  ASSERT_EQ(a.ext_refs().size(), 1u);
  EXPECT_EQ(a.ext_refs()[0].symbol, "k_hash");
  EXPECT_EQ(a.ext_refs()[0].offset, 1u);
}

// ---- Disassembler ---------------------------------------------------------------

TEST(Disasm, BasicFormatting) {
  EXPECT_EQ(to_string({Op::kMovi, 3, 0, 17}), "movi r3, 17");
  EXPECT_EQ(to_string({Op::kRet}), "ret");
  EXPECT_EQ(to_string({Op::kTrap, 0, 0, 7}), "trap 7");
  EXPECT_EQ(to_string({Op::kLoadR, 1, 14, -8}), "loadr r1, [r14-8]");
}

TEST(Disasm, BranchTargetsAbsolute) {
  Assembler a;
  Label l = a.new_label();
  a.jmp(l);
  a.bind(l);
  a.ret();
  auto code = a.finish();
  std::string text = disassemble(*code, 0x1000);
  EXPECT_NE(text.find("jmp 0x1005"), std::string::npos);
}

// ---- Relocation scanning ---------------------------------------------------------

TEST(Reloc, ScanFindsInternalAndExternal) {
  Assembler a;
  Label l = a.new_label();
  a.je(l);           // internal
  a.call_sym("f");   // external (rel32 = 0 -> targets right after itself,
                     // still counted as internal-range; adjust below)
  a.bind(l);
  a.ret();
  auto code = a.finish();
  ASSERT_TRUE(code.is_ok());

  auto sites = scan_rel32(*code);
  ASSERT_TRUE(sites.is_ok());
  ASSERT_EQ(sites->size(), 2u);
  EXPECT_EQ((*sites)[0].op, Op::kJe);
  EXPECT_TRUE((*sites)[0].internal);
  EXPECT_EQ((*sites)[1].op, Op::kCall);
}

TEST(Reloc, RetargetComputesCorrectDisplacement) {
  Bytes code = {0xE8, 0, 0, 0, 0, 0xC3};  // call +0; ret
  retarget_rel32(code, 1, /*new_base=*/0x2000, /*target=*/0x1000);
  auto d = decode(code);
  ASSERT_TRUE(d.is_ok());
  // target = instr_addr + 5 + rel -> rel = 0x1000 - 0x2005
  EXPECT_EQ(d->instr.imm, static_cast<i64>(0x1000) - 0x2005);
  EXPECT_EQ(branch_target(0x2000, 5, static_cast<i32>(d->instr.imm)),
            0x1000u);
}

TEST(Reloc, ScanRejectsGarbage) {
  Bytes junk = {0xE9, 1, 2};  // truncated jmp
  EXPECT_FALSE(scan_rel32(junk).is_ok());
}

TEST(Reloc, ExternalTargetDetection) {
  // jmp far beyond the function body must be flagged external.
  Assembler a;
  a.emit({Op::kJmp, 0, 0, 0x100000});
  a.ret();
  auto code = a.finish();
  auto sites = scan_rel32(*code);
  ASSERT_TRUE(sites.is_ok());
  ASSERT_EQ(sites->size(), 1u);
  EXPECT_FALSE((*sites)[0].internal);
}

}  // namespace
}  // namespace kshot::isa
