// Fleet orchestration: determinism of concurrent rollouts, the shared
// server's single-flight build cache, canary-wave abort semantics (with the
// byte-identical invariant on every target the rollout never touched), and
// isolation of two Testbeds patched from two threads.
#include <gtest/gtest.h>

#include <thread>

#include "fleet/fleet.hpp"

namespace kshot::fleet {
namespace {

using netsim::FaultPlan;
using netsim::FaultType;

struct KernelSnapshot {
  Bytes text;
  Bytes data;
};

// Reads through SMM mode so page attributes (mem_X is normally unreadable)
// cannot hide a partial write from the comparison.
KernelSnapshot snapshot_kernel(testbed::Testbed& t) {
  const auto& lay = t.kernel().layout();
  KernelSnapshot s;
  s.text.resize(t.kernel().image().text.size());
  EXPECT_TRUE(t.machine()
                  .mem()
                  .read(lay.text_base,
                        MutByteSpan(s.text.data(), s.text.size()),
                        machine::AccessMode::smm())
                  .is_ok());
  s.data.resize(lay.data_max);
  EXPECT_TRUE(t.machine()
                  .mem()
                  .read(lay.data_base,
                        MutByteSpan(s.data.data(), s.data.size()),
                        machine::AccessMode::smm())
                  .is_ok());
  return s;
}

FaultPlan drop_everything() {
  FaultPlan plan;
  plan.rates.drop = 1.0;  // no message ever crosses the link
  return plan;
}

// ---- Determinism -------------------------------------------------------------

TEST(Fleet, SameSeedsSameJobsByteIdenticalReport) {
  auto run = [] {
    FleetOptions o;
    o.targets = 4;
    o.jobs = 2;
    o.base_seed = 0xD17E;
    FaultPlan mild;
    mild.rates.drop = 0.15;
    mild.rates.corrupt = 0.10;
    o.fault_plan = mild;
    FleetController fc(o);
    auto rep = fc.run_campaign();
    EXPECT_TRUE(rep.is_ok()) << rep.status().to_string();
    return rep->to_string();
  };
  std::string a = run();
  std::string b = run();
  EXPECT_EQ(a, b);
}

TEST(Fleet, ReportIndependentOfJobsLevel) {
  // The worker-pool width changes scheduling, never outcomes: every number
  // in the report is a counter or modeled (virtual-clock) time.
  auto run = [](u32 jobs) {
    FleetOptions o;
    o.targets = 6;
    o.jobs = jobs;
    o.base_seed = 0xBEEF;
    o.rollout.canary = 2;
    o.rollout.wave = 4;
    FleetController fc(o);
    auto rep = fc.run_campaign();
    EXPECT_TRUE(rep.is_ok()) << rep.status().to_string();
    std::string s = rep->to_string();
    // The report embeds its jobs level; normalize it away for comparison.
    size_t pos = s.find("jobs=");
    EXPECT_NE(pos, std::string::npos);
    s.erase(pos, s.find(',', pos) - pos);
    return s;
  };
  std::string serial = run(1);
  std::string parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

// ---- Shared-server build cache -----------------------------------------------

TEST(Fleet, PatchsetCompiledOncePerFleet) {
  constexpr u32 kTargets = 6;
  FleetOptions o;
  o.targets = kTargets;
  o.jobs = 3;
  o.rollout.canary = kTargets;  // one wave; every target fetches once
  FleetController fc(o);
  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  EXPECT_EQ(rep->applied, kTargets);
  for (const auto& r : rep->results) {
    EXPECT_EQ(r.state, TargetState::kApplied);
    EXPECT_TRUE(r.healthy);
  }
  // N identical targets, N fetches: 1 miss (the build) + N-1 hits.
  EXPECT_EQ(rep->cache.patchset_misses, 1u);
  EXPECT_EQ(rep->cache.patchset_hits, kTargets - 1);
  EXPECT_DOUBLE_EQ(rep->cache_hit_rate,
                   static_cast<double>(kTargets - 1) / kTargets);
  // Boot-time pre-image compiles share the image cache the same way; the
  // patch-set build reuses the cached pre image and compiles only the post
  // side (pre miss at boot + post miss at build).
  EXPECT_EQ(rep->cache.image_misses, 2u);
  EXPECT_GE(rep->cache.image_hits, kTargets);
  // Applied targets have measured modeled latencies.
  EXPECT_GT(rep->downtime_us.p50, 0.0);
  EXPECT_GE(rep->e2e_us.p50, rep->downtime_us.p50);
}

// ---- Canary / wave abort -----------------------------------------------------

TEST(Fleet, FaultyWaveAbortsRolloutAndSparesTheRest) {
  // Waves: [0,1] canary (clean), [2,3,4] all hostile (every message
  // dropped), [5,6,7] never reached. The rollout must stop at wave 1 and
  // every non-applied target must be byte-identical to its pre-patch self.
  FleetOptions o;
  o.targets = 8;
  o.jobs = 2;
  o.rollout.canary = 2;
  o.rollout.wave = 3;
  o.rollout.abort_failure_rate = 0.5;
  for (u32 i : {2u, 3u, 4u}) o.target_fault_plans[i] = drop_everything();
  FleetController fc(o);
  ASSERT_TRUE(fc.boot_fleet().is_ok());

  std::vector<KernelSnapshot> snaps;
  for (u32 i = 0; i < fc.size(); ++i) {
    snaps.push_back(snapshot_kernel(*fc.target(i)));
  }

  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  EXPECT_TRUE(rep->aborted);
  EXPECT_EQ(rep->abort_wave, 1u);
  EXPECT_EQ(rep->waves_run, 2u);
  EXPECT_EQ(rep->applied, 2u);
  EXPECT_EQ(rep->failed, 3u);
  EXPECT_EQ(rep->pending, 3u);

  EXPECT_EQ(rep->results[0].state, TargetState::kApplied);
  EXPECT_EQ(rep->results[1].state, TargetState::kApplied);
  for (u32 i : {2u, 3u, 4u}) {
    EXPECT_EQ(rep->results[i].state, TargetState::kFailed) << i;
  }
  for (u32 i : {5u, 6u, 7u}) {
    EXPECT_EQ(rep->results[i].state, TargetState::kPending) << i;
  }
  // The transactional invariant, fleet-wide: failed and never-attempted
  // targets are byte-identical to their pre-patch snapshots.
  for (u32 i : {2u, 3u, 4u, 5u, 6u, 7u}) {
    KernelSnapshot now = snapshot_kernel(*fc.target(i));
    EXPECT_EQ(now.text, snaps[i].text) << "target " << i;
    EXPECT_EQ(now.data, snaps[i].data) << "target " << i;
    EXPECT_FALSE(fc.target(i)->kshot().is_patched(
        fc.target(i)->cve_case().entry_function))
        << i;
  }
}

TEST(Fleet, AbortRollsBackAppliedTargetsOfTheFailedWave) {
  // Wave 1 = targets [1..4]: three hostile, one clean. The clean one
  // applies, the wave fails 3/4 >= 0.5, and the abort must roll the applied
  // one back — its kernel text returns to the pre-patch bytes.
  FleetOptions o;
  o.targets = 5;
  o.jobs = 2;
  o.rollout.canary = 1;
  o.rollout.wave = 4;
  o.rollout.abort_failure_rate = 0.5;
  for (u32 i : {1u, 2u, 4u}) o.target_fault_plans[i] = drop_everything();
  FleetController fc(o);
  ASSERT_TRUE(fc.boot_fleet().is_ok());
  std::vector<KernelSnapshot> snaps;
  for (u32 i = 0; i < fc.size(); ++i) {
    snaps.push_back(snapshot_kernel(*fc.target(i)));
  }

  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  EXPECT_TRUE(rep->aborted);
  EXPECT_EQ(rep->abort_wave, 1u);
  EXPECT_EQ(rep->applied, 1u);      // the canary
  EXPECT_EQ(rep->failed, 3u);
  EXPECT_EQ(rep->rolled_back, 1u);  // target 3, undone by the abort
  EXPECT_EQ(rep->results[3].state, TargetState::kRolledBack);

  // Rolled back == trampolines gone, text byte-identical to pre-patch.
  // (Kernel *data* may legitimately differ: its health probes ran syscalls.)
  KernelSnapshot now = snapshot_kernel(*fc.target(3));
  EXPECT_EQ(now.text, snaps[3].text);
  EXPECT_FALSE(
      fc.target(3)->kshot().is_patched(fc.target(3)->cve_case().entry_function));
}

// ---- Adversarial fleet: quarantine state machine -----------------------------

// Hostile-campaign fixture: every target fights its own deterministic
// AsyncAdversary schedule (generate(adversary_seed ^ target_seed)). In-run
// retries are off so every detection surfaces to the fleet layer — the
// quarantine machine, not the pipeline's retry budget, is under test.
// adversary_seed 23 was picked because its per-target schedules include one
// persistent attacker *in the canary wave* (recovery rounds exhausted ->
// fenced) alongside a transient one (a one-shot race that loses on the
// recovery re-fetch). Attackers that merely garble the reply channel after
// the apply SMI ran no longer cost a recovery round: the pipeline's
// kQueryApplied probe disambiguates them into clean applies.
FleetOptions hostile_options() {
  FleetOptions o;
  o.targets = 6;
  o.jobs = 2;
  o.base_seed = 0xF1EE7;
  o.rollout.canary = 2;
  o.rollout.wave = 2;
  o.rollout.abort_failure_rate = 1.01;   // judge quarantines, not failures
  o.rollout.max_quarantine_rate = 1.01;  // no abort: run the fleet to the end
  o.retry_policy = core::RetryPolicy::none();
  o.adversary_seed = 23;
  return o;
}

TEST(FleetQuarantine, FencesPersistentAttackerRecoversTransients) {
  FleetController fc(hostile_options());
  ASSERT_TRUE(fc.boot_fleet().is_ok());
  std::vector<KernelSnapshot> snaps;
  for (u32 i = 0; i < fc.size(); ++i) {
    snaps.push_back(snapshot_kernel(*fc.target(i)));
  }

  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  EXPECT_EQ(rep->quarantined, 1u);
  EXPECT_EQ(rep->recovered, 1u);
  EXPECT_EQ(rep->applied, 5u);
  EXPECT_EQ(rep->failed, 0u);
  EXPECT_EQ(rep->pending, 0u);
  EXPECT_GT(rep->total_detections, 0u);

  u32 clean_applies = 0;
  for (const auto& r : rep->results) {
    if (r.state == TargetState::kQuarantined) {
      // Fenced == the full recovery budget was spent, every round kept
      // reporting classified detections, and the target never proved
      // health. The kernel itself must be untouched: every detection path
      // is transactional.
      EXPECT_EQ(r.quarantine_rounds, hostile_options().rollout.quarantine_retry_limit);
      EXPECT_GT(r.detection_events, 0u);
      EXPECT_FALSE(r.detections.empty());
      EXPECT_FALSE(r.healthy);
      EXPECT_FALSE(r.recovered);
      KernelSnapshot now = snapshot_kernel(*fc.target(r.index));
      EXPECT_EQ(now.text, snaps[r.index].text) << "target " << r.index;
      EXPECT_EQ(now.data, snaps[r.index].data) << "target " << r.index;
      EXPECT_FALSE(fc.target(r.index)->kshot().is_patched(
          fc.target(r.index)->cve_case().entry_function));
    } else if (r.recovered) {
      // Recovered == detections happened, at least one escalating-backoff
      // round re-fetched, and the target ended applied with proof of
      // health.
      EXPECT_EQ(r.state, TargetState::kApplied);
      EXPECT_TRUE(r.healthy);
      EXPECT_GE(r.quarantine_rounds, 1u);
      EXPECT_GT(r.detection_events, 0u);
      EXPECT_GT(r.resilience.backoff_us, 0.0);
    } else {
      // At least one target's schedule never connected; it applies clean.
      EXPECT_EQ(r.state, TargetState::kApplied);
      EXPECT_EQ(r.quarantine_rounds, 0u);
      ++clean_applies;
    }
  }
  EXPECT_GE(clean_applies, 1u);
}

TEST(FleetQuarantine, DegradedModeHalvesWavesAfterQuarantine) {
  FleetController fc(hostile_options());
  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  // The canary wave fences a target, so every later wave runs at half
  // width (2 -> 1): 2 canaries + 4 singleton waves = 5 waves total.
  EXPECT_TRUE(rep->degraded);
  EXPECT_EQ(rep->degraded_from_wave, 1u);
  EXPECT_EQ(rep->waves_run, 5u);
  std::map<u32, u32> wave_sizes;
  for (const auto& r : rep->results) ++wave_sizes[r.wave];
  EXPECT_EQ(wave_sizes[0], 2u);
  for (u32 w = 1; w < rep->waves_run; ++w) {
    EXPECT_EQ(wave_sizes[w], 1u) << "wave " << w;
  }
}

TEST(FleetQuarantine, QuarantineRateAbortsRolloutAndSparesTheRest) {
  FleetOptions o = hostile_options();
  o.rollout.max_quarantine_rate = 0.5;  // 1 fenced of 2 canaries trips it
  FleetController fc(o);
  ASSERT_TRUE(fc.boot_fleet().is_ok());
  std::vector<KernelSnapshot> snaps;
  for (u32 i = 0; i < fc.size(); ++i) {
    snaps.push_back(snapshot_kernel(*fc.target(i)));
  }

  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  EXPECT_TRUE(rep->aborted);
  EXPECT_EQ(rep->abort_wave, 0u);
  EXPECT_EQ(rep->waves_run, 1u);
  EXPECT_EQ(rep->quarantined, 1u);
  EXPECT_EQ(rep->rolled_back, 1u);  // the canary that applied is undone
  EXPECT_EQ(rep->pending, 4u);
  // Blast radius: after the abort no target in the fleet runs new code.
  for (u32 i = 0; i < fc.size(); ++i) {
    KernelSnapshot now = snapshot_kernel(*fc.target(i));
    EXPECT_EQ(now.text, snaps[i].text) << "target " << i;
    EXPECT_FALSE(
        fc.target(i)->kshot().is_patched(fc.target(i)->cve_case().entry_function))
        << i;
  }
}

TEST(FleetQuarantine, AdversarialReportByteIdenticalAcrossJobs) {
  // Same contract as Fleet.ReportIndependentOfJobsLevel, but under active
  // attack: detections, quarantine rounds, recovery backoff, and degraded
  // wave scheduling are all modeled or counted, never wall-clock.
  auto run = [](u32 jobs) {
    FleetOptions o = hostile_options();
    o.jobs = jobs;
    FleetController fc(o);
    auto rep = fc.run_campaign();
    EXPECT_TRUE(rep.is_ok()) << rep.status().to_string();
    std::string s = rep->to_string();
    size_t pos = s.find("jobs=");
    EXPECT_NE(pos, std::string::npos);
    s.erase(pos, s.find(',', pos) - pos);
    return s;
  };
  std::string serial = run(1);
  std::string parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

// ---- State machine surface ---------------------------------------------------

TEST(Fleet, StateNamesAndPhaseObserverTransitions) {
  EXPECT_STREQ(target_state_name(TargetState::kPending), "PENDING");
  EXPECT_STREQ(target_state_name(TargetState::kRolledBack), "ROLLED_BACK");

  // Drive one testbed by hand and record the raw pipeline transitions.
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  std::vector<core::PatchPhase> phases;
  (*tb)->kshot().set_phase_observer(
      [&phases](core::PatchPhase p) { phases.push_back(p); });
  auto rep = (*tb)->kshot().live_patch(c.id);
  ASSERT_TRUE(rep.is_ok());
  ASSERT_TRUE(rep->success);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0], core::PatchPhase::kFetching);
  EXPECT_EQ(phases[1], core::PatchPhase::kStaged);
  EXPECT_EQ(phases[2], core::PatchPhase::kApplied);
}

// ---- Percentiles helper ------------------------------------------------------

TEST(Fleet, PercentilesNearestRank) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);  // 1..100, reversed
  LatencyPercentiles p = percentiles_of(std::move(xs));
  EXPECT_DOUBLE_EQ(p.p50, 50);
  EXPECT_DOUBLE_EQ(p.p95, 95);
  EXPECT_DOUBLE_EQ(p.p99, 99);
  LatencyPercentiles empty = percentiles_of({});
  EXPECT_DOUBLE_EQ(empty.p50, 0);
}

TEST(Fleet, ModeledMakespanScalesWithWorkerPool) {
  // One wave of 8 near-identical targets: a pool of width j divides the
  // modeled campaign time by ~j. The makespan is a pure function of the
  // report, so this holds on any host regardless of physical core count.
  FleetOptions o;
  o.targets = 8;
  o.jobs = 2;
  o.rollout.canary = 8;  // single wave
  FleetController fc(o);
  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_EQ(rep->applied, 8u);

  double serial = modeled_makespan_us(*rep, 1);
  double sum = 0;
  for (const auto& r : rep->results) sum += r.e2e_us;
  EXPECT_DOUBLE_EQ(serial, sum);  // width 1 == plain sum

  double quad = modeled_makespan_us(*rep, 4);
  EXPECT_GE(serial / quad, 2.0);
  EXPECT_LE(modeled_makespan_us(*rep, 8), quad);
  // More workers than targets changes nothing.
  EXPECT_DOUBLE_EQ(modeled_makespan_us(*rep, 64),
                   modeled_makespan_us(*rep, 8));
}

// ---- Two-thread testbed isolation --------------------------------------------

TEST(Fleet, TwoTestbedsPatchConcurrentlyWithoutInterference) {
  // Two fully independent deployments (own machines, kernels, servers)
  // driven from two threads must produce exactly the reports they produce
  // when run back-to-back on one thread.
  const auto& c = cve::find_case("CVE-2014-0196");
  auto run_one = [&](u64 seed) {
    testbed::TestbedOptions opts;
    opts.seed = seed;
    auto tb = testbed::Testbed::boot(c, opts);
    EXPECT_TRUE(tb.is_ok());
    auto rep = (*tb)->kshot().live_patch(c.id);
    EXPECT_TRUE(rep.is_ok() && rep->success);
    auto exploit = (*tb)->run_exploit();
    EXPECT_TRUE(exploit.is_ok() && !exploit->oops);
    return rep->downtime_cycles;
  };

  u64 serial_a = run_one(0xA11CE);
  u64 serial_b = run_one(0xB0B);

  u64 threaded_a = 0, threaded_b = 0;
  std::thread ta([&] { threaded_a = run_one(0xA11CE); });
  std::thread tb([&] { threaded_b = run_one(0xB0B); });
  ta.join();
  tb.join();

  EXPECT_EQ(threaded_a, serial_a);
  EXPECT_EQ(threaded_b, serial_b);
  EXPECT_GT(serial_a, 0u);
}

}  // namespace
}  // namespace kshot::fleet
