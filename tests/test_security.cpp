// Security experiments (threat model §III, protections §V-D, comparison
// §VI-D): rootkit patch reversion, hijacked in-kernel patching, MITM,
// replay, mem_X corruption, kexec hijack, and DoS detection.
#include <gtest/gtest.h>

#include "attacks/network_attacks.hpp"
#include "attacks/rootkits.hpp"
#include "baselines/kpatch_sim.hpp"
#include "baselines/kup_sim.hpp"
#include "core/mailbox.hpp"
#include "core/smm_handler.hpp"
#include "crypto/aead.hpp"
#include "crypto/x25519.hpp"
#include "patchtool/package.hpp"
#include "testbed/testbed.hpp"

namespace kshot::attacks {
namespace {

using testbed::Testbed;
using testbed::TestbedOptions;

std::unique_ptr<Testbed> boot(const char* id = "CVE-2014-0196",
                              TestbedOptions opts = {}) {
  auto tb = Testbed::boot(cve::find_case(id), opts);
  EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
  return std::move(*tb);
}

// ---- Malicious patch reversion -----------------------------------------------

TEST(Reversion, RootkitUndoesKpatch) {
  // kpatch runs in the kernel's trust domain; a resident rootkit silently
  // reverts its trampoline and the kernel is vulnerable again — kpatch has
  // no way to even notice.
  auto t = boot();
  const auto& c = t->cve_case();
  auto rootkit = std::make_shared<ReversionRootkit>(t->pre_image());
  t->kernel().insmod(rootkit);

  baselines::KpatchSim kpatch(t->kernel(), t->scheduler());
  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  auto rep = kpatch.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  ASSERT_TRUE(rep->success);

  // Patch works right now...
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);

  // ...but one scheduler tick later the rootkit has reverted it.
  t->scheduler().run(1);
  EXPECT_GE(rootkit->reversions(), 1u);
  exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops) << "rootkit failed to revert kpatch";
}

TEST(Reversion, KshotIntrospectionRepairs) {
  // The same rootkit against KShot: the trampoline is reverted, but SMM
  // introspection detects and repairs it (§V-D), and the rootkit cannot
  // interfere with the repair.
  auto t = boot();
  const auto& c = t->cve_case();
  auto rootkit = std::make_shared<ReversionRootkit>(t->pre_image());
  t->kernel().insmod(rootkit);

  ASSERT_TRUE(t->kshot().live_patch(c.id).is_ok());
  t->scheduler().run(1);
  ASSERT_GE(rootkit->reversions(), 1u);
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops) << "expected the reversion to land first";

  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_GE(rep->trampolines_reverted, 1u);
  exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops) << "introspection did not repair the patch";
}

// ---- Hijacked in-kernel patching path ----------------------------------------

TEST(Hijack, CorruptedKpatchDeploysBrokenCode) {
  auto t = boot();
  const auto& c = t->cve_case();
  baselines::KpatchSim kpatch(t->kernel(), t->scheduler());
  u64 corruptions = 0;
  kpatch.set_pre_write_hook(make_patch_corruptor(&corruptions));

  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  auto rep = kpatch.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  // kpatch believes it succeeded — it cannot detect the tampering.
  EXPECT_TRUE(rep->success);
  EXPECT_GE(corruptions, 1u);

  // The "patched" kernel now oopses on benign input.
  auto benign = t->run_benign();
  ASSERT_TRUE(benign.is_ok());
  EXPECT_TRUE(benign->oops) << "corrupted patch should break the function";
}

TEST(Hijack, KshotRejectsTamperedStaging) {
  // The equivalent attack against KShot: corrupt the encrypted package in
  // mem_W between staging and SMI. The SMM handler's authenticated
  // decryption refuses it and the kernel keeps running the original code.
  auto t = boot();
  const auto& c = t->cve_case();
  const auto& lay = t->kernel().layout();

  // Run the normal pipeline but corrupt mem_W just before the apply SMI by
  // hooking a kernel module that stomps staged bytes every tick.
  class Stomper final : public kernel::KernelModule {
   public:
    explicit Stomper(kernel::MemoryLayout lay) : lay_(lay) {}
    std::string name() const override { return "memw_stomper"; }
    void on_tick(machine::Machine& m, kernel::Kernel&) override {
      Bytes junk(64, 0xFF);
      m.mem().write(lay_.mem_w_base() + 16, junk,
                    machine::AccessMode::normal());
    }
    kernel::MemoryLayout lay_;
  };

  // Manually drive the pipeline so the stomp lands between stage and SMI.
  auto& enclave = t->kshot().enclave();
  auto req = enclave.begin_fetch(c.id, netsim::PatchRequest::Op::kFetchPatch);
  ASSERT_TRUE(req.is_ok());
  auto resp = t->server().handle_request(*req);
  ASSERT_TRUE(resp.is_ok());
  ASSERT_TRUE(enclave.finish_fetch(*resp).is_ok());

  core::Mailbox mbox(t->machine().mem(), lay.mem_rw_base(),
                     machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_command(core::SmmCommand::kBeginSession).is_ok());
  t->machine().trigger_smi();
  auto smm_pub = mbox.read_smm_pub();
  ASSERT_TRUE(smm_pub.is_ok());
  ASSERT_TRUE(enclave.preprocess().is_ok());
  auto sealed = enclave.seal_for_smm(*smm_pub);
  ASSERT_TRUE(sealed.is_ok());

  crypto::X25519Key pub;
  std::copy(sealed->begin(), sealed->begin() + 32, pub.begin());
  Bytes package(sealed->begin() + 32, sealed->end());
  ASSERT_TRUE(t->machine()
                  .mem()
                  .write(lay.mem_w_base(), package,
                         machine::AccessMode::normal())
                  .is_ok());
  ASSERT_TRUE(mbox.write_enclave_pub(pub).is_ok());
  ASSERT_TRUE(mbox.write_staged_size(package.size()).is_ok());

  // The attack: kernel-privileged corruption of the staged ciphertext.
  Stomper(lay).on_tick(t->machine(), t->kernel());

  ASSERT_TRUE(mbox.write_command(core::SmmCommand::kApplyPatch).is_ok());
  t->machine().trigger_smi();
  EXPECT_EQ(*mbox.read_status(), core::SmmStatus::kMacFailure);

  // Nothing was applied; the kernel still runs the (original) code and
  // benign traffic is unaffected.
  EXPECT_EQ(t->kshot().handler().patches_applied(), 0u);
  auto benign = t->run_benign();
  ASSERT_TRUE(benign.is_ok());
  EXPECT_FALSE(benign->oops);
}

// ---- MITM on the server channel ----------------------------------------------

TEST(Mitm, TamperedResponseDetectedInEnclave) {
  auto t = boot();
  u64 tampers = 0;
  t->channel().set_tamperer(make_bitflip_mitm(512, &tampers));
  auto report = t->kshot().live_patch(t->cve_case().id);
  EXPECT_FALSE(report.is_ok());
  EXPECT_GE(tampers, 1u);
  // Original code untouched.
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops);
}

TEST(Mitm, CleanChannelAfterAttackRecovers) {
  auto t = boot();
  u64 tampers = 0;
  t->channel().set_tamperer(make_bitflip_mitm(512, &tampers));
  EXPECT_FALSE(t->kshot().live_patch(t->cve_case().id).is_ok());
  t->channel().clear_tamperer();
  auto report = t->kshot().live_patch(t->cve_case().id);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->success);
}

// ---- Replay -------------------------------------------------------------------

TEST(Replay, StaleCiphertextRejected) {
  // Capture the encrypted package of a successful patch, roll back, then
  // replay the old ciphertext: the per-patch DH session key is gone, so the
  // replay cannot authenticate (§V-C).
  auto t = boot();
  const auto& c = t->cve_case();
  ReplayAttacker attacker(t->kernel().layout());

  ASSERT_TRUE(t->kshot().live_patch(c.id).is_ok());
  ASSERT_TRUE(attacker.capture(t->machine()).is_ok());
  ASSERT_TRUE(t->kshot().rollback().is_ok());

  auto st = attacker.replay(t->machine());
  ASSERT_TRUE(st.is_ok());
  EXPECT_NE(*st, core::SmmStatus::kOk);
  // Kernel remains in the rolled-back (vulnerable) state — the attacker
  // could not force the stale patch in, and equally could not forge one.
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops);
}

TEST(Replay, ReplayIntoFreshSessionStillRejected) {
  // Even if the attacker provokes a new SMM session first, the old
  // ciphertext was sealed under a different key pair.
  auto t = boot();
  const auto& c = t->cve_case();
  ReplayAttacker attacker(t->kernel().layout());
  ASSERT_TRUE(t->kshot().live_patch(c.id).is_ok());
  ASSERT_TRUE(attacker.capture(t->machine()).is_ok());
  ASSERT_TRUE(t->kshot().rollback().is_ok());

  core::Mailbox mbox(t->machine().mem(),
                     t->kernel().layout().mem_rw_base(),
                     machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_command(core::SmmCommand::kBeginSession).is_ok());
  t->machine().trigger_smi();

  auto st = attacker.replay(t->machine());
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(*st, core::SmmStatus::kMacFailure);
}

// ---- mem_X corruption -----------------------------------------------------------

TEST(MemXCorruption, IntrospectionRepairsBodyAndAttributes) {
  auto t = boot();
  const auto& c = t->cve_case();
  ASSERT_TRUE(t->kshot().live_patch(c.id).is_ok());

  auto rootkit =
      std::make_shared<MemXCorruptorRootkit>(t->kernel().layout());
  t->kernel().insmod(rootkit);
  t->scheduler().run(1);
  ASSERT_GE(rootkit->corruptions(), 1u);
  ASSERT_TRUE(t->kernel().rmmod("memx_corruptor").is_ok());

  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_GE(rep->memx_tampered, 1u);
  EXPECT_GE(rep->attrs_restored, 1u);

  // The patched function body was repaired from the SMRAM copy: the patch
  // still works.
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
  auto benign = t->run_benign();
  ASSERT_TRUE(benign.is_ok());
  EXPECT_FALSE(benign->oops);
}

// ---- kexec hijack vs KUP ---------------------------------------------------------

TEST(KexecHijack, KupBootsAttackerImage) {
  // CVE-2015-7837 analogue: KUP trusts kexec; a hijacked kexec path swaps
  // in a backdoored kernel and KUP cannot tell.
  auto t = boot();
  const auto& c = t->cve_case();
  baselines::KupSim kup(t->kernel(), t->scheduler());

  // The "malicious image" is just the vulnerable kernel again (a downgrade
  // attack), rebuilt byte-for-byte.
  auto malicious = t->server().build_pre_image(c.id, t->compile_options());
  ASSERT_TRUE(malicious.is_ok());
  u64 hijacks = 0;
  kup.set_kexec_hook(make_kexec_hijacker(*malicious, &hijacks));

  auto post = t->server().build_post_image(c.id, t->compile_options());
  ASSERT_TRUE(post.is_ok());
  auto rep = kup.apply(c.id, *post);
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->success);  // KUP thinks the update landed
  EXPECT_EQ(hijacks, 1u);

  // But the machine still runs the vulnerable kernel.
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops);
}

// ---- DoS detection -----------------------------------------------------------------

TEST(Dos, BlockedHelperAppDetected) {
  // The helper app stages but the attacker suppresses the staging SMI, then
  // re-enables SMIs to cover its tracks. The remote server's verification
  // handshake with the SMM handler still flags the run: the helper claims
  // it staged, the (unforgeable) SMM-side counter says nothing arrived.
  auto t = boot();
  t->kshot().set_stage_tamperer(
      [&](Bytes&) { t->machine().set_smi_blocked(true); });
  auto r = t->kshot().live_patch(t->cve_case().id);
  ASSERT_FALSE(r.is_ok());
  t->kshot().clear_stage_tamperer();
  t->machine().set_smi_blocked(false);

  auto rep = t->kshot().dos_check();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->dos_suspected);
  EXPECT_TRUE(rep->smm_alive);  // SMM itself is fine — only staging was lost
  EXPECT_TRUE(rep->staging_attempted);
  EXPECT_FALSE(rep->staging_observed);
}

TEST(Dos, SuppressedSmiYieldsStaleEchoNotFakeSuccess) {
  // Without the sequence-number echo, a gated SMI would leave the previous
  // command's kOk in the status word and the helper would report success.
  // With it, the pipeline sees kAborted instead.
  auto t = boot();
  t->machine().set_smi_blocked(true);
  auto r = t->kshot().live_patch(t->cve_case().id);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::kAborted);
  EXPECT_GT(t->machine().suppressed_smis(), 0u);
  EXPECT_EQ(t->kshot().handler().patches_applied(), 0u);
}

TEST(Dos, HealthySystemNotFlagged) {
  auto t = boot();
  ASSERT_TRUE(t->kshot().live_patch(t->cve_case().id).is_ok());
  auto rep = t->kshot().dos_check();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_FALSE(rep->dos_suspected);
}

// ---- Malicious package injection (SMM apply-path hardening) ------------------

// A bare machine + SMM handler with an attacker in place of the enclave: the
// attacker knows the handshake, so it can seal arbitrary packages under a
// valid session key. Everything past the MAC must hold up on content checks
// alone.
struct SmmRig {
  explicit SmmRig(kernel::MemoryLayout layout)
      : lay(layout),
        m(lay.mem_bytes, lay.smram_base, lay.smram_size, 0x7E57),
        handler(lay, 0x7E57) {
    EXPECT_TRUE(m.set_smm_handler([this](machine::Machine& mm) {
                   handler.on_smi(mm);
                 }).is_ok());
  }

  /// Runs the full staging handshake for `package_wire` and returns the SMM
  /// status word after the apply SMI.
  core::SmmStatus deliver(const Bytes& package_wire) {
    const auto mode = machine::AccessMode::normal();
    core::Mailbox mbox(m.mem(), lay.mem_rw_base(), mode);
    EXPECT_TRUE(mbox.write_command(core::SmmCommand::kBeginSession).is_ok());
    m.trigger_smi();
    auto smm_pub = mbox.read_smm_pub();
    EXPECT_TRUE(smm_pub.is_ok());

    Rng rng(0xBAD5EED);
    auto keys = crypto::dh_generate(rng);
    auto shared = crypto::dh_shared(keys.private_key, *smm_pub);
    auto key =
        crypto::derive_key(ByteSpan(shared.data(), shared.size()), "sgx-smm");
    crypto::Nonce96 nonce{};
    rng.fill(MutByteSpan(nonce.data(), nonce.size()));
    Bytes sealed = crypto::seal(key, nonce, package_wire).serialize();

    EXPECT_TRUE(m.mem().write(lay.mem_w_base(), sealed, mode).is_ok());
    EXPECT_TRUE(mbox.write_enclave_pub(keys.public_key).is_ok());
    EXPECT_TRUE(mbox.write_staged_size(sealed.size()).is_ok());
    EXPECT_TRUE(mbox.write_command(core::SmmCommand::kApplyPatch).is_ok());
    m.trigger_smi();
    auto st = mbox.read_status();
    EXPECT_TRUE(st.is_ok());
    return st.is_ok() ? *st : core::SmmStatus::kOk;
  }

  kernel::MemoryLayout lay;
  machine::Machine m;
  core::SmmPatchHandler handler;
};

patchtool::FunctionPatch make_entry(const char* name, u64 taddr, u64 paddr,
                                    size_t code_bytes = 32) {
  patchtool::FunctionPatch p;
  p.name = name;
  p.taddr = taddr;
  p.paddr = paddr;
  p.code = Bytes(code_bytes, 0x90);
  return p;
}

TEST(MaliciousPackage, WrappingTaddrRejected) {
  // taddr near UINT64_MAX: the pre-fix bounds check computed
  // `taddr + ftrace_off + 5`, which wraps to a tiny value and passes the
  // upper-bound comparison — and the trampoline address `taddr + ftrace_off`
  // wraps to a *valid low physical address*, so the 5-byte jmp would land in
  // memory the package never named (here: address 5). The overflow-safe
  // check must reject the entry before anything is written.
  SmmRig rig({});
  patchtool::PatchSet set;
  set.id = "EVIL";
  set.kernel_version = "sim-4.4";
  auto evil = make_entry("evil", ~0ull - 4, rig.lay.mem_x_base());
  evil.ftrace_off = 10;  // wraps: jmp_addr = taddr + 10 == 5
  evil.var_edits.push_back(
      {rig.lay.data_base, 0xDEAD, patchtool::VarEdit::Kind::kSet});
  set.patches.push_back(std::move(evil));

  const auto mode = machine::AccessMode::normal();
  ASSERT_TRUE(
      rig.m.mem().write_u64(rig.lay.data_base, 0x1111, mode).is_ok());
  Bytes low_mem{0x01, 0x02, 0x03, 0x04, 0x05};
  ASSERT_TRUE(rig.m.mem().write(5, low_mem, mode).is_ok());

  auto st = rig.deliver(
      patchtool::serialize_patchset(set, patchtool::PatchOp::kPatch));
  EXPECT_EQ(st, core::SmmStatus::kBadPackage);
  EXPECT_EQ(rig.handler.patches_applied(), 0u);
  // Validation rejects before any write: neither the var edit nor the
  // wrapped trampoline landed.
  EXPECT_EQ(*rig.m.mem().read_u64(rig.lay.data_base, mode), 0x1111u);
  auto low = rig.m.mem().read_bytes(5, low_mem.size(), mode);
  ASSERT_TRUE(low.is_ok());
  EXPECT_EQ(*low, low_mem);
}

TEST(MaliciousPackage, WrappingPaddrRejected) {
  // Same wrap on the mem_X side: `paddr + code.size()` overflowing past zero
  // used to sail under the region end.
  SmmRig rig({});
  patchtool::PatchSet set;
  set.id = "EVIL";
  set.kernel_version = "sim-4.4";
  set.patches.push_back(
      make_entry("evil", rig.lay.text_base, ~0ull - 8, /*code_bytes=*/64));

  auto st = rig.deliver(
      patchtool::serialize_patchset(set, patchtool::PatchOp::kPatch));
  EXPECT_EQ(st, core::SmmStatus::kBadPackage);
  EXPECT_EQ(rig.handler.patches_applied(), 0u);
}

TEST(MaliciousPackage, FailedEntryCaptureAbortsAtomically) {
  // A layout whose text window extends past physical memory: an in-window
  // taddr can still make the trampoline-entry capture read fail. The read's
  // Status used to be dropped — a commit would then record five zero bytes
  // as the "original" entry, and a later rollback would write them over
  // live kernel text. The fix aborts the whole transaction: earlier
  // trampolines and variable edits must be unwound.
  kernel::MemoryLayout lay;
  lay.text_max = lay.mem_bytes;  // window reaches past the 64 MB of RAM
  SmmRig rig(lay);
  const auto mode = machine::AccessMode::normal();

  // Known kernel-text and data bytes to verify the unwind against.
  Bytes entry_bytes{0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  ASSERT_TRUE(rig.m.mem().write(lay.text_base, entry_bytes, mode).is_ok());
  ASSERT_TRUE(rig.m.mem().write_u64(lay.data_base, 0x2222, mode).is_ok());

  patchtool::PatchSet set;
  set.id = "EVIL";
  set.kernel_version = "sim-4.4";
  auto good = make_entry("good", lay.text_base, lay.mem_x_base());
  good.var_edits.push_back(
      {lay.data_base, 0xDEAD, patchtool::VarEdit::Kind::kSet});
  set.patches.push_back(std::move(good));
  // In-window (bounds_ok passes) but beyond physical memory: the entry
  // capture read fails after entry 0 was fully installed.
  set.patches.push_back(
      make_entry("trap", lay.mem_bytes, lay.mem_x_base() + 0x1000));

  auto st = rig.deliver(
      patchtool::serialize_patchset(set, patchtool::PatchOp::kPatch));
  EXPECT_EQ(st, core::SmmStatus::kBadPackage);
  EXPECT_EQ(rig.handler.patches_applied(), 0u);
  // Entry 0's trampoline and var edit were unwound: kernel state is
  // byte-identical to its pre-SMI snapshot.
  auto text = rig.m.mem().read_bytes(lay.text_base, entry_bytes.size(), mode);
  ASSERT_TRUE(text.is_ok());
  EXPECT_EQ(*text, entry_bytes);
  EXPECT_EQ(*rig.m.mem().read_u64(lay.data_base, mode), 0x2222u);
}

TEST(MaliciousPackage, MixedOpPackageRejected) {
  // The op dispatch used to sniff entry 0 only: a package whose first entry
  // says rollback routed everything to the rollback path, silently dropping
  // the apply entries while reporting success. Mixed packages must be
  // rejected outright.
  SmmRig rig({});
  const auto mode = machine::AccessMode::normal();
  Bytes entry_bytes{0x11, 0x22, 0x33, 0x44, 0x55};
  ASSERT_TRUE(
      rig.m.mem().write(rig.lay.text_base, entry_bytes, mode).is_ok());

  patchtool::PatchSet set;
  set.id = "EVIL";
  set.kernel_version = "sim-4.4";
  auto first = make_entry("decoy", rig.lay.text_base, rig.lay.mem_x_base());
  first.op = patchtool::PatchOp::kRollback;
  set.patches.push_back(std::move(first));
  auto second = make_entry("payload", rig.lay.text_base + 0x100,
                           rig.lay.mem_x_base() + 0x1000);
  second.op = patchtool::PatchOp::kPatch;
  set.patches.push_back(std::move(second));

  auto st = rig.deliver(patchtool::serialize_patchset_raw(set));
  EXPECT_EQ(st, core::SmmStatus::kBadPackage);
  EXPECT_EQ(rig.handler.patches_applied(), 0u);
  auto text =
      rig.m.mem().read_bytes(rig.lay.text_base, entry_bytes.size(), mode);
  ASSERT_TRUE(text.is_ok());
  EXPECT_EQ(*text, entry_bytes);
}

/// Every kernel-owned byte: [0, SMRAM) and (SMRAM, reserved region). SMRAM
/// holds handler scratch and the reserved region holds the staged package +
/// mem_X bodies, which legitimately change during a session; everything
/// else must be transactional.
Bytes kernel_state(SmmRig& rig) {
  const auto mode = machine::AccessMode::smm();
  auto low = rig.m.mem().read_bytes(0, rig.lay.smram_base, mode);
  auto high = rig.m.mem().read_bytes(
      rig.lay.smram_base + rig.lay.smram_size,
      rig.lay.reserved_base - (rig.lay.smram_base + rig.lay.smram_size),
      mode);
  EXPECT_TRUE(low.is_ok() && high.is_ok());
  Bytes out = std::move(*low);
  out.insert(out.end(), high->begin(), high->end());
  return out;
}

TEST(MaliciousPackage, VarEditUnwindRestoresOldestValueFirstWritten) {
  // Two entries edit the SAME variable before a later entry fails. The undo
  // log then holds two records for one address: (addr, 0x1111) from entry 0
  // and (addr, 0xAAAA) from entry 1. Unwinding in forward order would
  // restore 0x1111 and then clobber it with the intermediate 0xAAAA;
  // only reverse-order unwind ends at the pre-session value.
  kernel::MemoryLayout lay;
  lay.text_max = lay.mem_bytes;  // lets an in-window taddr fail its capture
  SmmRig rig(lay);
  const auto mode = machine::AccessMode::normal();
  const u64 var = lay.data_base + 0x20;
  ASSERT_TRUE(rig.m.mem().write_u64(var, 0x1111, mode).is_ok());
  Bytes pre = kernel_state(rig);

  patchtool::PatchSet set;
  set.id = "EVIL";
  set.kernel_version = "sim-4.4";
  auto first = make_entry("first", lay.text_base, lay.mem_x_base());
  first.var_edits.push_back({var, 0xAAAA, patchtool::VarEdit::Kind::kSet});
  set.patches.push_back(std::move(first));
  auto second =
      make_entry("second", lay.text_base + 0x100, lay.mem_x_base() + 0x1000);
  second.var_edits.push_back({var, 0xBBBB, patchtool::VarEdit::Kind::kSet});
  set.patches.push_back(std::move(second));
  // In-window but past physical memory: trampoline capture fails after both
  // var edits and both mem_X bodies landed.
  set.patches.push_back(
      make_entry("trap", lay.mem_bytes, lay.mem_x_base() + 0x2000));

  auto st = rig.deliver(
      patchtool::serialize_patchset(set, patchtool::PatchOp::kPatch));
  EXPECT_EQ(st, core::SmmStatus::kBadPackage);
  EXPECT_EQ(rig.handler.patches_applied(), 0u);
  EXPECT_EQ(*rig.m.mem().read_u64(var, mode), 0x1111u);
  EXPECT_EQ(kernel_state(rig), pre)
      << "failed apply left kernel-owned bytes modified";
}

TEST(MaliciousPackage, RollbackAfterPartialTrampolineFailure) {
  // An apply that fails between trampoline installations must leave nothing
  // for a follow-up rollback to act on: the partial trampolines were
  // unwound, so rollback reports kNothingToRollback and writes nothing.
  kernel::MemoryLayout lay;
  lay.text_max = lay.mem_bytes;
  SmmRig rig(lay);
  const auto mode = machine::AccessMode::normal();
  Bytes entry_bytes{0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  ASSERT_TRUE(rig.m.mem().write(lay.text_base, entry_bytes, mode).is_ok());
  Bytes pre = kernel_state(rig);

  patchtool::PatchSet set;
  set.id = "EVIL";
  set.kernel_version = "sim-4.4";
  set.patches.push_back(make_entry("good", lay.text_base, lay.mem_x_base()));
  set.patches.push_back(
      make_entry("trap", lay.mem_bytes, lay.mem_x_base() + 0x1000));
  auto st = rig.deliver(
      patchtool::serialize_patchset(set, patchtool::PatchOp::kPatch));
  EXPECT_EQ(st, core::SmmStatus::kBadPackage);

  core::Mailbox mbox(rig.m.mem(), lay.mem_rw_base(),
                     machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_command(core::SmmCommand::kRollback).is_ok());
  rig.m.trigger_smi();
  auto rb = mbox.read_status();
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(*rb, core::SmmStatus::kNothingToRollback);
  EXPECT_EQ(kernel_state(rig), pre)
      << "rollback after a failed apply modified kernel-owned bytes";
}

TEST(MaliciousPackage, FailedApplyDoesNotDisturbPriorRollbackUnit) {
  // A successful apply followed by a partially-failing apply: the failure
  // must not corrupt the rollback bookkeeping of the committed batch, and
  // rolling back must restore the original pre-ANY-apply kernel text.
  kernel::MemoryLayout lay;
  lay.text_max = lay.mem_bytes;
  SmmRig rig(lay);
  const auto mode = machine::AccessMode::normal();
  Bytes entry_bytes{0x10, 0x20, 0x30, 0x40, 0x50};
  ASSERT_TRUE(rig.m.mem().write(lay.text_base, entry_bytes, mode).is_ok());
  Bytes pre = kernel_state(rig);

  patchtool::PatchSet good;
  good.id = "GOOD";
  good.kernel_version = "sim-4.4";
  good.patches.push_back(make_entry("fn", lay.text_base, lay.mem_x_base()));
  ASSERT_EQ(rig.deliver(patchtool::serialize_patchset(
                good, patchtool::PatchOp::kPatch)),
            core::SmmStatus::kOk);
  ASSERT_EQ(rig.handler.patches_applied(), 1u);

  patchtool::PatchSet bad;
  bad.id = "EVIL";
  bad.kernel_version = "sim-4.4";
  bad.patches.push_back(
      make_entry("fn2", lay.text_base + 0x200, lay.mem_x_base() + 0x1000));
  bad.patches.push_back(
      make_entry("trap", lay.mem_bytes, lay.mem_x_base() + 0x2000));
  EXPECT_EQ(rig.deliver(patchtool::serialize_patchset(
                bad, patchtool::PatchOp::kPatch)),
            core::SmmStatus::kBadPackage);
  EXPECT_EQ(rig.handler.patches_applied(), 1u);

  core::Mailbox mbox(rig.m.mem(), lay.mem_rw_base(),
                     machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_command(core::SmmCommand::kRollback).is_ok());
  rig.m.trigger_smi();
  auto rb = mbox.read_status();
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(*rb, core::SmmStatus::kOk);
  auto text = rig.m.mem().read_bytes(lay.text_base, entry_bytes.size(), mode);
  ASSERT_TRUE(text.is_ok());
  EXPECT_EQ(*text, entry_bytes);
  EXPECT_EQ(kernel_state(rig), pre)
      << "rollback did not restore the pre-apply snapshot";
}

// ---- SMRAM lock ----------------------------------------------------------------

TEST(SmramLock, KernelCannotReplaceHandler) {
  auto t = boot();
  // After install(), SMRAM is locked: even kernel-privileged code cannot
  // register a different handler.
  auto st = t->machine().set_smm_handler([](machine::Machine&) {});
  EXPECT_EQ(st.code(), Errc::kPermissionDenied);
  // And it cannot read or write SMRAM either.
  const auto base = t->kernel().layout().smram_base;
  EXPECT_FALSE(t->machine()
                   .mem()
                   .read_bytes(base, 64, machine::AccessMode::normal())
                   .is_ok());
}

}  // namespace
}  // namespace kshot::attacks
