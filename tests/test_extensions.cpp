// Tests for the extension features: constant folding, the §VIII consistency
// checker, signature-based function matching (stripped symbols), and the
// periodic-SMI introspection watchdog.
#include <gtest/gtest.h>

#include "attacks/rootkits.hpp"
#include "kcc/constfold.hpp"
#include "kcc/eval.hpp"
#include "kcc/parser.hpp"
#include "kcc/printer.hpp"
#include "patchtool/consistency.hpp"
#include "patchtool/matcher.hpp"
#include "testbed/testbed.hpp"

namespace kshot {
namespace {

kcc::CompileOptions opts() {
  kcc::CompileOptions o;
  o.text_base = 0x100000;
  o.data_base = 0x400000;
  return o;
}

// ---- Constant folding -----------------------------------------------------------

TEST(ConstFold, FoldsArithmetic) {
  auto m = kcc::parse("fn f() { return 2 + 3 * 4; }");
  ASSERT_TRUE(m.is_ok());
  kcc::run_constfold_pass(*m);
  EXPECT_EQ(kcc::to_source(m->functions[0]),
            "fn f() {\n  return 14;\n}\n");
}

TEST(ConstFold, PrunesDecidedBranches) {
  auto m = kcc::parse(R"(
fn f(a) {
  if (1 > 2) {
    return 111;
  } else {
    return 222;
  }
}
)");
  ASSERT_TRUE(m.is_ok());
  kcc::run_constfold_pass(*m);
  std::string folded = kcc::to_source(m->functions[0]);
  EXPECT_EQ(folded.find("111"), std::string::npos);
  EXPECT_NE(folded.find("222"), std::string::npos);
  EXPECT_EQ(folded.find("if"), std::string::npos);
}

TEST(ConstFold, DropsWhileZero) {
  auto m = kcc::parse("fn f() { while (0) { bug(1); } return 7; }");
  ASSERT_TRUE(m.is_ok());
  kcc::run_constfold_pass(*m);
  EXPECT_EQ(kcc::to_source(m->functions[0]).find("while"),
            std::string::npos);
}

TEST(ConstFold, PreservesDivByZeroOops) {
  auto m = kcc::parse("fn f() { return 5 / 0; }");
  ASSERT_TRUE(m.is_ok());
  kcc::run_constfold_pass(*m);
  // Must not fold: the runtime semantics are an oops.
  EXPECT_NE(kcc::to_source(m->functions[0]).find("/"), std::string::npos);
  kcc::AstEvaluator ev(*m);
  auto r = ev.call("f", {});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->oops);
}

TEST(ConstFold, CompiledImageShrinks) {
  std::string src = "fn f(a) { return a + (2 * 3 + 4 * (5 + 6)); }";
  auto plain = kcc::compile_source(src, opts());
  kcc::CompileOptions fopts = opts();
  fopts.enable_constfold = true;
  auto folded = kcc::compile_source(src, fopts);
  ASSERT_TRUE(plain.is_ok() && folded.is_ok());
  EXPECT_LT(folded->find_symbol("f")->size, plain->find_symbol("f")->size);
}

TEST(ConstFold, WideImmediatesSurvive) {
  // Folding can create >32-bit constants; the wide-immediate emitter must
  // reproduce them exactly.
  std::string src = "fn f() { return 0x12345678 * 0x1000; }";
  kcc::CompileOptions fopts = opts();
  fopts.enable_constfold = true;
  auto img = kcc::compile_source(src, fopts);
  ASSERT_TRUE(img.is_ok());
  machine::Machine m(8 << 20, 0xA0000, 0x20000);
  ASSERT_TRUE(m.mem()
                  .write(img->text_base, img->text, machine::AccessMode::smm())
                  .is_ok());
  m.cpu().sp() = 0x400000 - 8;
  m.mem().write_u64(m.cpu().sp(), machine::kReturnSentinel,
                    machine::AccessMode::normal());
  m.cpu().rip = img->find_symbol("f")->addr;
  auto res = m.run(1000);
  EXPECT_EQ(res.kind, machine::StepKind::kRetTop);
  EXPECT_EQ(m.cpu().regs[0], 0x12345678ull * 0x1000ull);
}

// ---- Consistency checker (§VIII) -----------------------------------------------

TEST(Consistency, SafeWhenGlobalOnlyUsedByPatchedFunctions) {
  std::string pre = "global lim = 9; fn f(a) { return lim + a; }";
  std::string post =
      "global lim = 5; fn f(a) { if (a > lim) { return 0 - 22; } return lim "
      "+ a; }";
  auto pre_img = kcc::compile_source(pre, opts());
  auto post_img = kcc::compile_source(post, opts());
  auto post_mod = kcc::parse(post);
  ASSERT_TRUE(pre_img.is_ok() && post_img.is_ok() && post_mod.is_ok());
  auto diff = patchtool::diff_images(*pre_img, *post_img);
  ASSERT_TRUE(diff.is_ok());
  auto rep = patchtool::check_consistency(*post_mod, *post_img, *diff);
  EXPECT_TRUE(rep.safe)
      << (rep.warnings.empty() ? std::string() : rep.warnings[0]);
}

TEST(Consistency, WarnsWhenUnpatchedFunctionSharesGlobal) {
  // `other` uses `lim` too but the patch does not replace it — the §VIII
  // case KShot cannot handle.
  std::string pre = R"(
global lim = 9;
fn f(a) { return lim + a; }
fn other(a) { return lim * a; }
)";
  std::string post = R"(
global lim = 5;
fn f(a) { if (a > lim) { return 0 - 22; } return lim + a; }
fn other(a) { return lim * a; }
)";
  auto pre_img = kcc::compile_source(pre, opts());
  auto post_img = kcc::compile_source(post, opts());
  auto post_mod = kcc::parse(post);
  auto diff = patchtool::diff_images(*pre_img, *post_img);
  ASSERT_TRUE(diff.is_ok());
  auto rep = patchtool::check_consistency(*post_mod, *post_img, *diff);
  EXPECT_FALSE(rep.safe);
  ASSERT_EQ(rep.warnings.size(), 1u);
  EXPECT_NE(rep.warnings[0].find("other"), std::string::npos);
}

TEST(Consistency, TracksGlobalsThroughInlining) {
  // The shared use is hidden inside an inline helper expanded into an
  // unpatched caller; the checker must still find it.
  std::string pre = R"(
global state = 1;
inline fn touch(v) { return state + v; }
fn f(a) { return a; }
fn user(a) { return touch(a); }
)";
  std::string post = R"(
global state = 2;
inline fn touch(v) { return state + v; }
fn f(a) { let x = 1; return a + x * 0; }
fn user(a) { return touch(a); }
)";
  auto pre_img = kcc::compile_source(pre, opts());
  auto post_img = kcc::compile_source(post, opts());
  auto post_mod = kcc::parse(post);
  auto diff = patchtool::diff_images(*pre_img, *post_img);
  ASSERT_TRUE(diff.is_ok());
  auto rep = patchtool::check_consistency(*post_mod, *post_img, *diff);
  EXPECT_FALSE(rep.safe);
  bool mentions_user = false;
  for (const auto& w : rep.warnings) {
    if (w.find("user") != std::string::npos) mentions_user = true;
  }
  EXPECT_TRUE(mentions_user);
}

TEST(Consistency, AllTable1CasesAreSafe) {
  // The CVE suite deliberately stays within KShot's supported envelope; the
  // checker must agree (the paper reports ~2% of real CVEs fall outside).
  for (const auto& c : cve::all_cases()) {
    if (!c.has_type(3)) continue;  // only data-touching patches matter
    kernel::MemoryLayout lay;
    auto o = testbed::options_for_layout(lay, c.kernel);
    auto pre_img = kcc::compile_source(c.pre_source, o);
    auto post_img = kcc::compile_source(c.post_source, o);
    auto post_mod = kcc::parse(c.post_source);
    ASSERT_TRUE(pre_img.is_ok() && post_img.is_ok() && post_mod.is_ok());
    auto diff = patchtool::diff_images(*pre_img, *post_img);
    ASSERT_TRUE(diff.is_ok());
    auto rep = patchtool::check_consistency(*post_mod, *post_img, *diff);
    EXPECT_TRUE(rep.safe) << c.id << ": "
                          << (rep.warnings.empty() ? "" : rep.warnings[0]);
  }
}

// ---- Signature matcher -------------------------------------------------------------

TEST(Matcher, AlignsIdenticalImages) {
  std::string src = R"(
fn alpha(a) { return a + 1; }
fn beta(a) { return alpha(a) * 2; }
fn gamma(a) { return beta(a) - alpha(a); }
)";
  auto img = kcc::compile_source(src, opts());
  ASSERT_TRUE(img.is_ok());
  auto match = patchtool::match_functions(*img, *img);
  EXPECT_EQ(match.matches.size(), 3u);
  for (const auto& [post, pre] : match.matches) EXPECT_EQ(post, pre);
  EXPECT_TRUE(match.unmatched.empty());
}

TEST(Matcher, SurvivesRelocationShift) {
  // Growing the first function moves everything; signatures must still
  // align the unchanged functions.
  std::string pre = R"(
fn alpha(a) { return a + 1; }
fn beta(a) { return alpha(a) * 2; }
fn gamma(a) { return beta(a) - 7; }
)";
  std::string post = R"(
fn alpha(a) { pad(48); return a + 1; }
fn beta(a) { return alpha(a) * 2; }
fn gamma(a) { return beta(a) - 7; }
)";
  auto pre_img = kcc::compile_source(pre, opts());
  auto post_img = kcc::compile_source(post, opts());
  auto match = patchtool::match_functions(*pre_img, *post_img);
  EXPECT_EQ(match.matches.at("beta"), "beta");
  EXPECT_EQ(match.matches.at("gamma"), "gamma");
  // alpha changed, so it may be unmatched — but must not mis-match.
  if (match.matches.count("alpha")) {
    EXPECT_EQ(match.matches.at("alpha"), "alpha");
  }
}

TEST(Matcher, MatchesRenamedSymbols) {
  // Same code, stripped/renamed symbols: signature matching recovers the
  // correspondence without names.
  std::string pre = R"(
fn checksum(a, b) { let s = a + b; return s * 17; }
fn dispatch(a) { return checksum(a, 3) + 1; }
)";
  std::string post = R"(
fn sub_401000(a, b) { let s = a + b; return s * 17; }
fn sub_401040(a) { return sub_401000(a, 3) + 1; }
)";
  auto pre_img = kcc::compile_source(pre, opts());
  auto post_img = kcc::compile_source(post, opts());
  auto match = patchtool::match_functions(*pre_img, *post_img);
  EXPECT_EQ(match.matches.at("sub_401000"), "checksum");
  EXPECT_EQ(match.matches.at("sub_401040"), "dispatch");
}

TEST(Matcher, ReportsUnmatchedNewFunctions) {
  std::string pre = "fn f(a) { return a; }";
  std::string post =
      "fn f(a) { return a; } fn brand_new(a) { return a * 99 + 1; }";
  auto pre_img = kcc::compile_source(pre, opts());
  auto post_img = kcc::compile_source(post, opts());
  auto match = patchtool::match_functions(*pre_img, *post_img);
  ASSERT_EQ(match.unmatched.size(), 1u);
  EXPECT_EQ(match.unmatched[0], "brand_new");
}

// ---- Periodic-SMI introspection watchdog -----------------------------------------

TEST(Watchdog, PeriodicSmiFiresDuringExecution) {
  testbed::TestbedOptions o;
  o.workload_threads = 2;
  o.watchdog_interval_cycles = 50'000;
  auto tb = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"), o);
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;
  u64 smis_before = t.machine().smi_count();
  t.scheduler().run(2000, 64);
  EXPECT_GT(t.machine().smi_count(), smis_before + 5);
}

TEST(Watchdog, AutonomouslyRepairsReversion) {
  // No explicit introspect() call anywhere: the firmware watchdog SMIs run
  // the sweep and keep beating the rootkit.
  testbed::TestbedOptions o;
  o.workload_threads = 2;
  o.watchdog_interval_cycles = 30'000;
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, o);
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;

  auto rootkit =
      std::make_shared<attacks::ReversionRootkit>(t.pre_image());
  t.kernel().insmod(rootkit);
  ASSERT_TRUE(t.kshot().live_patch(c.id)->success);

  // Let rootkit and watchdog race for a while.
  t.scheduler().run(3000, 64);
  EXPECT_GT(rootkit->reversions(), 0u);

  // The watchdog must have the last word: one more sweep interval without
  // scheduler ticks (the rootkit only acts on ticks), then check.
  t.kshot().introspect();
  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
  EXPECT_GT(t.kshot().handler().last_introspection().patches_checked, 0u);
}

TEST(Watchdog, CannotBeArmedAfterLock) {
  auto tb = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"), {});
  ASSERT_TRUE(tb.is_ok());
  // install() already locked SMRAM.
  EXPECT_EQ((*tb)->machine().set_periodic_smi(1000).code(),
            Errc::kPermissionDenied);
}

}  // namespace
}  // namespace kshot
