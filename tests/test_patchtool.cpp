// Patch toolchain tests: call graphs, the inlining worklist, semantic binary
// diffing (relocation-shift immunity), patch-set construction (relocs, var
// edits, Type classification), and the Fig. 3 package wire format.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kcc/compiler.hpp"
#include "kcc/parser.hpp"
#include "patchtool/bindiff.hpp"
#include "patchtool/callgraph.hpp"
#include "patchtool/package.hpp"

namespace kshot::patchtool {
namespace {

kcc::CompileOptions opts() {
  kcc::CompileOptions o;
  o.text_base = 0x100000;
  o.data_base = 0x400000;
  return o;
}

kcc::KernelImage compile(const std::string& src) {
  auto img = kcc::compile_source(src, opts());
  EXPECT_TRUE(img.is_ok()) << img.status().to_string();
  return *img;
}

kcc::Module parse_mod(const std::string& src) {
  auto m = kcc::parse(src);
  EXPECT_TRUE(m.is_ok()) << m.status().to_string();
  return std::move(*m);
}

// ---- Call graphs ----------------------------------------------------------

TEST(CallGraph, SourceEdges) {
  auto m = parse_mod(R"(
fn a(x) { return b(x) + c(x); }
fn b(x) { return c(x); }
fn c(x) { return x; }
)");
  CallGraph g = source_call_graph(m);
  EXPECT_EQ(g["a"], (std::set<std::string>{"b", "c"}));
  EXPECT_EQ(g["b"], (std::set<std::string>{"c"}));
  EXPECT_TRUE(g["c"].empty());
}

TEST(CallGraph, BinaryEdgesMatchSourceWithoutInlining) {
  std::string src = R"(
fn a(x) { return b(x) + c(x); }
fn b(x) { return c(x); }
fn c(x) { return x; }
)";
  auto img = compile(src);
  CallGraph bg = binary_call_graph(img);
  EXPECT_EQ(bg["a"], (std::set<std::string>{"b", "c"}));
  EXPECT_EQ(bg["b"], (std::set<std::string>{"c"}));
}

TEST(CallGraph, InliningCreatesSourceBinaryDivergence) {
  std::string src = R"(
inline fn h(x) { return x * 2; }
fn a(x) { return h(x); }
fn b(x) { return h(x) + 1; }
)";
  auto m = parse_mod(src);
  auto img = compile(src);
  // Source graph sees calls to h; binary graph has no h at all.
  EXPECT_TRUE(source_call_graph(m)["a"].count("h"));
  EXPECT_FALSE(binary_call_graph(img).count("h"));
  EXPECT_EQ(inlined_functions(m, img), std::set<std::string>{"h"});
}

TEST(CallGraph, WorklistImplicatesCallersOfInlined) {
  std::string src = R"(
inline fn h(x) { return x * 2; }
fn a(x) { return h(x); }
fn b(x) { return h(x) + 1; }
fn c(x) { return x; }
)";
  auto m = parse_mod(src);
  auto img = compile(src);
  auto implicated = implicated_functions(m, img, {"h"});
  EXPECT_EQ(implicated, (std::set<std::string>{"a", "b"}));
}

TEST(CallGraph, WorklistHandlesTransitiveInlining) {
  std::string src = R"(
inline fn inner(x) { return x + 1; }
inline fn outer(x) { return inner(x) * 2; }
fn user(x) { return outer(x); }
fn direct(x) { return inner(x); }
)";
  auto m = parse_mod(src);
  auto img = compile(src);
  // Changing `inner` implicates both binary functions.
  auto implicated = implicated_functions(m, img, {"inner"});
  EXPECT_EQ(implicated, (std::set<std::string>{"user", "direct"}));
}

TEST(CallGraph, DirectChangeImplicatesOnlyItself) {
  std::string src = R"(
fn a(x) { return b(x); }
fn b(x) { return x; }
)";
  auto m = parse_mod(src);
  auto img = compile(src);
  EXPECT_EQ(implicated_functions(m, img, {"b"}),
            std::set<std::string>{"b"});
}

TEST(CallGraph, SourceChangedFunctions) {
  auto pre = parse_mod("fn a(x) { return 1; } fn b(x) { return 2; }");
  auto post = parse_mod("fn a(x) { return 1; } fn b(x) { return 3; }");
  EXPECT_EQ(source_changed_functions(pre, post),
            std::set<std::string>{"b"});
}

TEST(CallGraph, AddedAndRemovedFunctionsCountAsChanged) {
  auto pre = parse_mod("fn a(x) { return 1; } fn gone(x) { return 0; }");
  auto post = parse_mod("fn a(x) { return 1; } fn fresh(x) { return 0; }");
  EXPECT_EQ(source_changed_functions(pre, post),
            (std::set<std::string>{"gone", "fresh"}));
}

// ---- Semantic binary diff ----------------------------------------------------

TEST(BinDiff, IdenticalImagesShowNoChanges) {
  std::string src = "fn a(x) { return x + 1; } fn b(x) { return a(x); }";
  auto diff = diff_images(compile(src), compile(src));
  ASSERT_TRUE(diff.is_ok());
  EXPECT_TRUE(diff->changed_functions.empty());
  EXPECT_TRUE(diff->added_functions.empty());
  EXPECT_TRUE(diff->layout_compatible);
}

TEST(BinDiff, RelocationShiftDoesNotCountAsChange) {
  // Growing `a` moves `b` and changes b's call displacement to `c`; the
  // semantic diff must still see b (and c) as unchanged.
  std::string pre = R"(
fn a(x) { return x; }
fn b(x) { return c(x) + 1; }
fn c(x) { return x * 3; }
)";
  std::string post = R"(
fn a(x) { pad(64); return x; }
fn b(x) { return c(x) + 1; }
fn c(x) { return x * 3; }
)";
  auto diff = diff_images(compile(pre), compile(post));
  ASSERT_TRUE(diff.is_ok());
  EXPECT_EQ(diff->changed_functions, std::vector<std::string>{"a"});
}

TEST(BinDiff, GlobalRenumberingIsLayoutIncompatible) {
  // Deleting the first global shifts the second — shared data moved.
  std::string pre = "global g1 = 1; global g2 = 2; fn f() { return g2; }";
  std::string post = "global g2 = 2; fn f() { return g2; }";
  auto diff = diff_images(compile(pre), compile(post));
  ASSERT_TRUE(diff.is_ok());
  EXPECT_FALSE(diff->layout_compatible);
}

TEST(BinDiff, AppendedGlobalIsCompatible) {
  std::string pre = "global g1 = 1; fn f() { return g1; }";
  std::string post =
      "global g1 = 1; global g2 = 9; fn f() { g2 = g1; return g1; }";
  auto diff = diff_images(compile(pre), compile(post));
  ASSERT_TRUE(diff.is_ok());
  EXPECT_TRUE(diff->layout_compatible);
  ASSERT_EQ(diff->added_globals.size(), 1u);
  EXPECT_EQ(diff->added_globals[0].name, "g2");
}

TEST(BinDiff, ModifiedGlobalInitDetected) {
  std::string pre = "global lim = 100; fn f() { return lim; }";
  std::string post = "global lim = 50; fn f() { return lim; }";
  auto diff = diff_images(compile(pre), compile(post));
  ASSERT_TRUE(diff.is_ok());
  ASSERT_EQ(diff->modified_globals.size(), 1u);
  EXPECT_EQ(diff->modified_globals[0].init, 50);
}

// ---- build_patchset -----------------------------------------------------------

TEST(BuildPatch, SimpleFunctionChange) {
  std::string pre = "fn f(a) { return a + 1; } fn g(a) { return f(a); }";
  std::string post = "fn f(a) { return a + 2; } fn g(a) { return f(a); }";
  auto set = build_patchset(compile(pre), compile(post), {"CVE-TEST", {"f"}});
  ASSERT_TRUE(set.is_ok()) << set.status().to_string();
  ASSERT_EQ(set->patches.size(), 1u);
  const FunctionPatch& p = set->patches[0];
  EXPECT_EQ(p.name, "f");
  EXPECT_EQ(p.type, PatchType::kType1);
  EXPECT_EQ(p.taddr, compile(pre).find_symbol("f")->addr);
  EXPECT_EQ(p.ftrace_off, 5);
  EXPECT_FALSE(p.code.empty());
  EXPECT_TRUE(p.relocs.empty());  // f calls nothing external
}

TEST(BuildPatch, ExternalCallGetsReloc) {
  std::string pre = R"(
fn helper(a) { return a * 2; }
fn f(a) { return helper(a) + 1; }
)";
  std::string post = R"(
fn helper(a) { return a * 2; }
fn f(a) { return helper(a) + 2; }
)";
  auto pre_img = compile(pre);
  auto set = build_patchset(pre_img, compile(post), {"CVE-TEST", {"f"}});
  ASSERT_TRUE(set.is_ok()) << set.status().to_string();
  ASSERT_EQ(set->patches.size(), 1u);
  ASSERT_EQ(set->patches[0].relocs.size(), 1u);
  const RelocEntry& r = set->patches[0].relocs[0];
  EXPECT_EQ(r.patch_index, -1);
  EXPECT_EQ(r.target, pre_img.find_symbol("helper")->addr);
}

TEST(BuildPatch, IntraSetCallUsesPatchIndex) {
  std::string pre = R"(
fn callee(a) { return a; }
fn caller(a) { return callee(a) + 1; }
)";
  std::string post = R"(
fn callee(a) { return a + 5; }
fn caller(a) { return callee(a) + 2; }
)";
  auto set = build_patchset(compile(pre), compile(post),
                            {"CVE-TEST", {"callee", "caller"}});
  ASSERT_TRUE(set.is_ok());
  ASSERT_EQ(set->patches.size(), 2u);
  // caller's call to callee must reference the patched copy.
  const FunctionPatch* caller = nullptr;
  for (const auto& p : set->patches) {
    if (p.name == "caller") caller = &p;
  }
  ASSERT_NE(caller, nullptr);
  ASSERT_EQ(caller->relocs.size(), 1u);
  EXPECT_GE(caller->relocs[0].patch_index, 0);
  EXPECT_EQ(set->patches[static_cast<size_t>(caller->relocs[0].patch_index)]
                .name,
            "callee");
}

TEST(BuildPatch, AddedFunctionHasNoTrampolineTarget) {
  std::string pre = "fn f(a) { return a; }";
  std::string post = R"(
fn new_helper(a) { return a * 7; }
fn f(a) { return new_helper(a); }
)";
  auto set = build_patchset(compile(pre), compile(post), {"CVE-TEST", {"f"}});
  ASSERT_TRUE(set.is_ok()) << set.status().to_string();
  ASSERT_EQ(set->patches.size(), 2u);
  const FunctionPatch* added = nullptr;
  for (const auto& p : set->patches) {
    if (p.name == "new_helper") added = &p;
  }
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(added->taddr, 0u);
}

TEST(BuildPatch, Type2ClassificationFromSourceChanged) {
  std::string pre = R"(
inline fn h(x) { return x; }
fn user(a) { return h(a); }
)";
  std::string post = R"(
inline fn h(x) { return x + 1; }
fn user(a) { return h(a); }
)";
  // Only `h` changed at source level; `user` changed in the binary.
  auto set = build_patchset(compile(pre), compile(post), {"CVE-TEST", {"h"}});
  ASSERT_TRUE(set.is_ok());
  ASSERT_EQ(set->patches.size(), 1u);
  EXPECT_EQ(set->patches[0].name, "user");
  EXPECT_EQ(set->patches[0].type, PatchType::kType2);
}

TEST(BuildPatch, Type3ClassificationAndVarEdits) {
  std::string pre = "global lim = 100; fn f(a) { return lim + a; }";
  std::string post =
      "global lim = 50; global extra = 7; fn f(a) { extra = a; return lim + a; }";
  auto set = build_patchset(compile(pre), compile(post), {"CVE-TEST", {"f"}});
  ASSERT_TRUE(set.is_ok()) << set.status().to_string();
  ASSERT_EQ(set->patches.size(), 1u);
  EXPECT_EQ(set->patches[0].type, PatchType::kType3);
  ASSERT_EQ(set->patches[0].var_edits.size(), 2u);
  // One init for `extra`, one set for `lim`.
  int inits = 0, sets = 0;
  for (const auto& v : set->patches[0].var_edits) {
    if (v.kind == VarEdit::Kind::kInit) ++inits;
    if (v.kind == VarEdit::Kind::kSet) ++sets;
  }
  EXPECT_EQ(inits, 1);
  EXPECT_EQ(sets, 1);
}

TEST(BuildPatch, LayoutIncompatibleRejected) {
  std::string pre = "global a = 1; global b = 2; fn f() { return b; }";
  std::string post = "global b = 2; fn f() { return b; }";
  auto set = build_patchset(compile(pre), compile(post), {"CVE-TEST", {"f"}});
  ASSERT_FALSE(set.is_ok());
  EXPECT_EQ(set.status().code(), Errc::kUnsupported);
}

// ---- Package wire format ---------------------------------------------------------

PatchSet sample_set() {
  PatchSet set;
  set.id = "CVE-0000-0001";
  set.kernel_version = "sim-4.4";
  FunctionPatch p;
  p.sequence = 0;
  p.name = "target_fn";
  p.type = PatchType::kType1;
  p.taddr = 0x100040;
  p.paddr = 0x1900000;
  p.ftrace_off = 5;
  p.code = {0x0F, 0x1F, 0x44, 0x00, 0x00, 0x11, 0x00, 42, 0, 0, 0, 0xC3};
  p.relocs.push_back({7, -1, 0x100200});
  p.var_edits.push_back({0x400010, 99, VarEdit::Kind::kSet});
  set.patches.push_back(std::move(p));
  return set;
}

TEST(Package, RoundTrip) {
  PatchSet set = sample_set();
  Bytes wire = serialize_patchset(set, PatchOp::kPatch);
  auto parsed = parse_patchset(wire);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->id, set.id);
  EXPECT_EQ(parsed->kernel_version, set.kernel_version);
  ASSERT_EQ(parsed->patches.size(), 1u);
  const FunctionPatch& p = parsed->patches[0];
  EXPECT_EQ(p.name, "target_fn");
  EXPECT_EQ(p.op, PatchOp::kPatch);
  EXPECT_EQ(p.taddr, 0x100040u);
  EXPECT_EQ(p.paddr, 0x1900000u);
  EXPECT_EQ(p.ftrace_off, 5);
  EXPECT_EQ(p.code, set.patches[0].code);
  EXPECT_EQ(p.relocs, set.patches[0].relocs);
  EXPECT_EQ(p.var_edits, set.patches[0].var_edits);
}

TEST(Package, OpOverride) {
  Bytes wire = serialize_patchset(sample_set(), PatchOp::kRollback);
  auto op = peek_op(wire);
  ASSERT_TRUE(op.is_ok());
  EXPECT_EQ(*op, PatchOp::kRollback);
  auto parsed = parse_patchset(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->patches[0].op, PatchOp::kRollback);
}

TEST(Package, FnHeaderIs42Bytes) {
  // The paper-visible constant.
  EXPECT_EQ(kFnHeaderBytes, 42u);
  // Header bytes = 2+1+1+8+8+4+2+2+2+4+8.
  EXPECT_EQ(2 + 1 + 1 + 8 + 8 + 4 + 2 + 2 + 2 + 4 + 8,
            static_cast<int>(kFnHeaderBytes));
}

TEST(Package, BadMagicRejected) {
  Bytes wire = serialize_patchset(sample_set(), PatchOp::kPatch);
  wire[0] ^= 0xFF;
  auto parsed = parse_patchset(wire);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), Errc::kIntegrityFailure);
}

TEST(Package, TruncationRejected) {
  Bytes wire = serialize_patchset(sample_set(), PatchOp::kPatch);
  for (size_t keep : {4ul, 12ul, 44ul, wire.size() - 1}) {
    Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(parse_patchset(cut).is_ok()) << "kept " << keep;
  }
}

class PackageCorruption : public ::testing::TestWithParam<size_t> {};

TEST_P(PackageCorruption, AnyFlippedByteIsDetected) {
  Bytes wire = serialize_patchset(sample_set(), PatchOp::kPatch);
  size_t pos = GetParam() % wire.size();
  // Skip the leading magic/count plumbing fields whose corruption is
  // reported differently; everything from the digest onwards must be caught
  // by digest verification.
  wire[12 + pos % (wire.size() - 12)] ^= 0x01;
  EXPECT_FALSE(parse_patchset(wire).is_ok());
}

INSTANTIATE_TEST_SUITE_P(Offsets, PackageCorruption,
                         ::testing::Values(0, 1, 5, 13, 21, 34, 47, 55, 63,
                                           71, 89, 97, 101, 113));

TEST(Package, TrailingGarbageRejected) {
  Bytes wire = serialize_patchset(sample_set(), PatchOp::kPatch);
  wire.push_back(0);
  EXPECT_FALSE(parse_patchset(wire).is_ok());
}

TEST(Package, MultiFunctionRoundTrip) {
  PatchSet set = sample_set();
  FunctionPatch q;
  q.sequence = 1;
  q.name = "second_fn";
  q.type = PatchType::kType2;
  q.taddr = 0;  // added function
  q.code = Bytes(1000, 0x90);
  q.relocs.push_back({1, 0, 0});
  set.patches.push_back(q);
  Bytes wire = serialize_patchset(set, PatchOp::kPatch);
  auto parsed = parse_patchset(wire);
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed->patches.size(), 2u);
  EXPECT_EQ(parsed->patches[1].name, "second_fn");
  EXPECT_EQ(parsed->patches[1].code.size(), 1000u);
  EXPECT_EQ(parsed->patches[1].relocs[0].patch_index, 0);
}

// ---- Serializer properties over random sets --------------------------------

PatchSet random_set(Rng& rng) {
  PatchSet set;
  set.id = "CVE-" + std::to_string(2000 + rng.next_below(30)) + "-" +
           std::to_string(rng.next_below(10000));
  set.kernel_version = rng.next_below(2) ? "sim-4.4" : "";
  size_t nfns = 1 + rng.next_below(4);
  for (size_t i = 0; i < nfns; ++i) {
    FunctionPatch p;
    p.sequence = static_cast<u16>(i);
    p.op = rng.next_below(2) ? PatchOp::kPatch : PatchOp::kRollback;
    p.type = static_cast<PatchType>(1 + rng.next_below(3));
    if (rng.next_below(8)) p.name = "fn_" + std::to_string(rng.next_below(100));
    p.taddr = rng.next_below(2) ? rng.next() : 0;
    p.paddr = rng.next();
    p.ftrace_off = static_cast<u16>(rng.next_below(3) ? 5 : rng.next_below(64));
    p.code = rng.next_bytes(rng.next_below(300));
    size_t nrel = rng.next_below(3);
    for (size_t r = 0; r < nrel; ++r) {
      p.relocs.push_back({static_cast<u32>(rng.next_below(1 << 20)),
                          rng.next_below(2) ? static_cast<i32>(
                                                  rng.next_below(nfns))
                                            : -1,
                          rng.next()});
    }
    size_t nvar = rng.next_below(3);
    for (size_t v = 0; v < nvar; ++v) {
      p.var_edits.push_back({rng.next(), rng.next(),
                             rng.next_below(2) ? VarEdit::Kind::kInit
                                               : VarEdit::Kind::kSet});
    }
    set.patches.push_back(std::move(p));
  }
  return set;
}

TEST(PackageProperty, ParseOfSerializeIsIdentity) {
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 25; ++round) {
    PatchSet set = random_set(rng);
    Bytes wire = serialize_patchset_raw(set);
    auto parsed = parse_patchset(wire);
    ASSERT_TRUE(parsed.is_ok())
        << "round " << round << ": " << parsed.status().to_string();
    EXPECT_EQ(*parsed, set) << "round " << round;
    // Serialization is canonical: re-serializing the parse is byte-stable.
    EXPECT_EQ(serialize_patchset_raw(*parsed), wire) << "round " << round;
  }
}

TEST(PackageProperty, EveryTruncationRejectedWithStatus) {
  Rng rng(0xDECADE);
  for (int round = 0; round < 5; ++round) {
    PatchSet set = random_set(rng);
    Bytes wire = serialize_patchset_raw(set);
    for (size_t keep = 0; keep < wire.size(); ++keep) {
      Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(keep));
      auto parsed = parse_patchset(cut);
      ASSERT_FALSE(parsed.is_ok())
          << "round " << round << ": prefix of " << keep << "/" << wire.size()
          << " bytes parsed";
      EXPECT_NE(parsed.status().code(), Errc::kOk);
      EXPECT_FALSE(parsed.status().message().empty())
          << "silent rejection at keep=" << keep;
    }
  }
}

}  // namespace
}  // namespace kshot::patchtool
