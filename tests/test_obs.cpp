// Observability layer: recorder/metrics units, Chrome-trace export, full
// pipeline span coverage, the phase-sum identities against the modeled
// timing claims (Table III), and fleet trace determinism across --jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fleet/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed/testbed.hpp"

namespace kshot::obs {
namespace {

// ---- TraceRecorder -----------------------------------------------------------

TEST(TraceRecorder, RecordsSpansAndInstantsInOrder) {
  TraceRecorder r;
  r.complete("smm", "decrypt", 3, 100, 250, 1.5, {{"bytes", "42"}});
  r.instant("fleet", "wave_start", kSharedTarget, 0, {{"wave", "1"}});

  auto events = r.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(r.size(), 2u);

  EXPECT_EQ(events[0].kind, EventKind::kComplete);
  EXPECT_EQ(events[0].component, "smm");
  EXPECT_EQ(events[0].name, "decrypt");
  EXPECT_EQ(events[0].target, 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].virt_cycles(), 150u);
  EXPECT_DOUBLE_EQ(events[0].wall_us, 1.5);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "bytes");

  EXPECT_EQ(events[1].kind, EventKind::kInstant);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].target, kSharedTarget);
  EXPECT_EQ(events[1].virt_cycles(), 0u);

  r.clear();
  EXPECT_EQ(r.size(), 0u);
}

TEST(TraceRecorder, ChromeTraceIsStructurallyValidAndEscapes) {
  TraceRecorder r;
  r.complete("smm", "na\"me\nwith\ttabs\\", 0, 0, 3000, 2.0,
             {{"why", "a \"quoted\" reason"}});
  r.instant("kshot", "evt", 1, 1500);
  std::string js = to_chrome_trace(r.snapshot());

  EXPECT_EQ(js.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(js.substr(js.size() - 2), "]}");
  // Raw control characters / quotes must not survive into the JSON.
  EXPECT_EQ(js.find('\t'), std::string::npos);
  EXPECT_NE(js.find("\\\""), std::string::npos);
  EXPECT_NE(js.find("\\n"), std::string::npos);
  EXPECT_NE(js.find("\\t"), std::string::npos);
  // Balanced delimiters (no nesting beyond objects in the array).
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'),
            std::count(js.begin(), js.end(), '}'));
  EXPECT_EQ(std::count(js.begin(), js.end(), '['),
            std::count(js.begin(), js.end(), ']'));
  // Default cost model: 3000 cycles -> 1.000 us.
  EXPECT_NE(js.find("\"dur\":1.000"), std::string::npos);
}

TEST(TraceRecorder, WallClockOmittedFromDeterministicExport) {
  TraceRecorder r;
  r.complete("smm", "apply", 0, 0, 300, 123.456);
  ChromeTraceOptions opts;
  opts.include_wall = false;
  EXPECT_EQ(to_chrome_trace(r.snapshot(), opts).find("wall_us"),
            std::string::npos);
  EXPECT_NE(to_chrome_trace(r.snapshot()).find("wall_us"),
            std::string::npos);
}

TEST(Canonicalize, DiscardsAppendOrder) {
  // The same event multiset appended in two different interleavings (as a
  // racy shared recorder would) must canonicalize to the same sequence.
  TraceRecorder a;
  a.instant("netsim", "patchset_cache_miss", kSharedTarget, 0, {{"key", "x"}});
  a.instant("netsim", "patchset_cache_hit", kSharedTarget, 0, {{"key", "x"}});
  a.instant("fleet", "wave_start", kSharedTarget, 0, {{"wave", "0"}});

  TraceRecorder b;
  b.instant("fleet", "wave_start", kSharedTarget, 0, {{"wave", "0"}});
  b.instant("netsim", "patchset_cache_hit", kSharedTarget, 0, {{"key", "x"}});
  b.instant("netsim", "patchset_cache_miss", kSharedTarget, 0, {{"key", "x"}});

  ChromeTraceOptions det;
  det.include_wall = false;
  EXPECT_EQ(to_chrome_trace(canonicalize(a.snapshot()), det),
            to_chrome_trace(canonicalize(b.snapshot()), det));
}

// ---- Metrics -----------------------------------------------------------------

TEST(Metrics, CounterReferencesAreStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("smm.sessions");
  c.inc();
  c.inc(4);
  EXPECT_EQ(&c, &reg.counter("smm.sessions"));
  EXPECT_EQ(reg.counter("smm.sessions").value(), 5u);
  EXPECT_EQ(reg.counter("other").value(), 0u);
}

TEST(Metrics, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("downtime_us");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 103.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 103.5 / 3);
  u64 total = 0;
  for (u64 b : s.buckets) total += b;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(s.buckets[0], 1u);  // [0, 1)
}

TEST(Metrics, SnapshotMergeSumsByName) {
  MetricsRegistry a;
  a.counter("x").inc(2);
  a.histogram("h").observe(10);
  MetricsRegistry b;
  b.counter("x").inc(3);
  b.counter("y").inc(1);
  b.histogram("h").observe(30);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  auto find = [&](const std::string& name) -> u64 {
    for (const auto& [n, v] : merged.counters) {
      if (n == name) return v;
    }
    return ~0ull;
  };
  EXPECT_EQ(find("x"), 5u);
  EXPECT_EQ(find("y"), 1u);
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].second.count, 2u);
  EXPECT_DOUBLE_EQ(merged.histograms[0].second.sum, 40.0);

  // Both dump formats mention every metric.
  for (const std::string& body :
       {merged.to_string(), merged.to_json()}) {
    EXPECT_NE(body.find('x'), std::string::npos);
    EXPECT_NE(body.find('y'), std::string::npos);
    EXPECT_NE(body.find('h'), std::string::npos);
  }
}

// ---- Pipeline integration ----------------------------------------------------

struct TracedRun {
  TraceRecorder trace;
  MetricsRegistry metrics;
  std::unique_ptr<testbed::Testbed> tb;
  core::PatchReport report;
};

std::unique_ptr<TracedRun> traced_live_patch() {
  auto run = std::make_unique<TracedRun>();
  testbed::TestbedOptions opts;
  opts.trace = &run->trace;
  opts.metrics = &run->metrics;
  auto tb = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"), opts);
  EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
  run->tb = std::move(*tb);
  auto rep = run->tb->kshot().live_patch("CVE-2014-0196");
  EXPECT_TRUE(rep.is_ok());
  if (rep.is_ok()) run->report = *rep;
  return run;
}

TEST(PipelineTrace, EveryLayerEmitsSpans) {
  auto run = traced_live_patch();
  ASSERT_TRUE(run->report.success);

  std::set<std::string> components;
  std::set<std::string> names;
  for (const auto& e : run->trace.snapshot()) {
    components.insert(e.component);
    names.insert(e.component + "/" + e.name);
  }
  for (const char* c : {"kshot", "enclave", "smm", "netsim"}) {
    EXPECT_TRUE(components.count(c)) << "no spans from component " << c;
  }
  for (const char* n :
       {"kshot/fetch", "kshot/stage", "kshot/live_patch", "kshot/smi_raised",
        "enclave/preprocess", "enclave/seal", "smm/keygen", "smm/decrypt",
        "smm/verify", "smm/apply", "smm/smi", "netsim/handle_request",
        "netsim/compile"}) {
    EXPECT_TRUE(names.count(n)) << "missing span " << n;
  }

  // The handler's counters and the pipeline's registry are the same store.
  EXPECT_EQ(run->metrics.counter("smm.applied").value(),
            run->tb->kshot().handler().patches_applied());
  EXPECT_EQ(run->metrics.counter("kshot.patch_success").value(), 1u);
  EXPECT_EQ(run->metrics.counter("server.requests").value(), 1u);
}

TEST(PipelineTrace, SmiSpansSumToModeledDowntime) {
  auto run = traced_live_patch();
  ASSERT_TRUE(run->report.success);
  auto& m = run->tb->machine();
  const auto& cost = m.cost_model();

  u64 smi_cycles = 0;
  u64 phase_cycles = 0;
  u64 smi_spans = 0;
  for (const auto& e : run->trace.snapshot()) {
    if (e.component != "smm") continue;
    if (e.name == "smi") {
      smi_cycles += e.virt_cycles();
      ++smi_spans;
    } else if (e.name == "keygen" || e.name == "decrypt" ||
               e.name == "verify" || e.name == "apply") {
      phase_cycles += e.virt_cycles();
    }
  }
  // live_patch = one begin-session SMI + one apply SMI.
  EXPECT_EQ(smi_spans, 2u);

  // Identity 1: the "smi" spans cover the machine's SMM residency exactly —
  // their sum is the paper's downtime, which is what the report publishes.
  EXPECT_EQ(smi_cycles, run->report.downtime_cycles);
  EXPECT_EQ(smi_cycles, m.smm_cycles());
  EXPECT_DOUBLE_EQ(cost.to_us(smi_cycles), run->report.smm.modeled_total_us);

  // Identity 2: the four phase spans sum to the handler's modeled work plus
  // the staged-bytes hash pinning (charged inside the decrypt span), and
  // adding the per-SMI switch overhead and the per-SMI detection charge
  // (mailbox snapshot + freshness checks, charged before any phase span
  // opens) reconstructs the full downtime. Hardening is not free, and every
  // cycle of it must be accounted for here.
  const auto& t = run->tb->kshot().handler().last_timings();
  const u64 per_smi_detect = cost.snapshot_cycles + cost.detect_fixed_cycles;
  const u64 pin_cycles =
      run->tb->kshot().handler().detection_overhead_cycles() -
      smi_spans * per_smi_detect;
  EXPECT_EQ(phase_cycles, t.modeled_cycles + pin_cycles);
  EXPECT_EQ(phase_cycles + smi_spans * (cost.smi_entry_cycles +
                                        cost.rsm_cycles + per_smi_detect),
            smi_cycles);
}

TEST(PipelineTrace, VirtualTimelineIsSeedDeterministic) {
  // Two runs with the same seed must produce the same virtual-clock event
  // sequence (names + virtual timestamps); wall clocks may differ.
  auto sig = [](const TraceRecorder& r) {
    std::string s;
    for (const auto& e : r.snapshot()) {
      s += e.component + "/" + e.name + "@" +
           std::to_string(e.virt_begin_cycles) + "+" +
           std::to_string(e.virt_cycles()) + ";";
    }
    return s;
  };
  auto a = traced_live_patch();
  auto b = traced_live_patch();
  EXPECT_EQ(sig(a->trace), sig(b->trace));
}

// ---- Fleet determinism -------------------------------------------------------

fleet::FleetReport run_fleet(u32 jobs) {
  fleet::FleetOptions o;
  o.targets = 6;
  o.jobs = jobs;
  o.base_seed = 77;
  o.rollout.canary = 2;
  o.rollout.wave = 4;
  o.capture_trace = true;
  fleet::FleetController fc(o);
  auto rep = fc.run_campaign();
  EXPECT_TRUE(rep.is_ok()) << rep.status().to_string();
  return rep.is_ok() ? *rep : fleet::FleetReport{};
}

TEST(FleetTrace, ByteIdenticalAcrossJobsLevels) {
  fleet::FleetReport serial = run_fleet(1);
  fleet::FleetReport parallel = run_fleet(4);

  ASSERT_FALSE(serial.trace_json.empty());
  EXPECT_EQ(serial.trace_json, parallel.trace_json);
  // Everything below the header (which prints the jobs level itself) is
  // byte-identical.
  auto body = [](const fleet::FleetReport& r) {
    std::string s = r.to_string();
    return s.substr(s.find('\n') + 1);
  };
  EXPECT_EQ(body(serial), body(parallel));
  // Counters are deterministic regardless of worker interleaving.
  // (Histograms are not compared: some record *wall* durations, e.g.
  // kshot.fetch_us, which legitimately vary run to run.)
  EXPECT_EQ(serial.metrics.counters, parallel.metrics.counters);

  // The campaign trace carries per-target pipeline spans and the shared
  // server/fleet events.
  EXPECT_NE(serial.trace_json.find("\"smm\""), std::string::npos);
  EXPECT_NE(serial.trace_json.find("wave_start"), std::string::npos);
  EXPECT_NE(serial.trace_json.find("handle_request"), std::string::npos);
  // Deterministic export: no wall-clock residue.
  EXPECT_EQ(serial.trace_json.find("wall_us"), std::string::npos);
}

// ---- Multi-CPU downtime decomposition ----------------------------------------

TEST(MultiCpuDecomposition, SpansSumToDowntimeExactlyAtEveryCpuCount) {
  // The tentpole's accounting identity, integer-exact (no float rounding):
  // rendezvous + handler + resume == downtime at every CPU count.
  for (u32 cpus : {1u, 4u, 16u}) {
    testbed::TestbedOptions topts;
    topts.seed = 0x5EED;
    topts.cpus = cpus;
    auto tb = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"),
                                     std::move(topts));
    ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
    auto rep = (*tb)->kshot().live_patch("CVE-2014-0196");
    ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
    ASSERT_TRUE(rep->success);
    EXPECT_EQ(rep->rendezvous_cycles + rep->handler_cycles +
                  rep->resume_cycles,
              rep->downtime_cycles)
        << "cpus=" << cpus;
    EXPECT_GT(rep->rendezvous_cycles, 0u);
    EXPECT_GT(rep->handler_cycles, 0u);
    EXPECT_GT(rep->resume_cycles, 0u);
  }
}

TEST(MultiCpuDecomposition, MoreCpusNeverShrinkRendezvous) {
  auto decomposed = [](u32 cpus) {
    testbed::TestbedOptions topts;
    topts.seed = 0x5EED;
    topts.cpus = cpus;
    auto tb = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"),
                                     std::move(topts));
    EXPECT_TRUE(tb.is_ok());
    auto rep = (*tb)->kshot().live_patch("CVE-2014-0196");
    EXPECT_TRUE(rep.is_ok() && rep->success);
    return *rep;
  };
  auto r1 = decomposed(1);
  auto r4 = decomposed(4);
  auto r16 = decomposed(16);
  EXPECT_LT(r1.rendezvous_cycles, r4.rendezvous_cycles);
  EXPECT_LT(r4.rendezvous_cycles, r16.rendezvous_cycles);
  // Parallel verify: the handler phase must not blow up 16x with the CPUs.
  EXPECT_LT(r16.downtime_cycles, r1.downtime_cycles * 5 / 2);
}

TEST(FleetTrace, ReportByteIdenticalAcrossJobsAtEveryCpuCount) {
  for (u32 cpus : {1u, 4u, 16u}) {
    auto run = [&](u32 jobs) {
      fleet::FleetOptions o;
      o.targets = 4;
      o.jobs = jobs;
      o.base_seed = 99;
      o.rollout.canary = 1;
      o.rollout.wave = 3;
      o.cpus = cpus;
      fleet::FleetController fc(o);
      auto rep = fc.run_campaign();
      EXPECT_TRUE(rep.is_ok()) << rep.status().to_string();
      return rep.is_ok() ? *rep : fleet::FleetReport{};
    };
    fleet::FleetReport a = run(1);
    fleet::FleetReport b = run(4);
    // Everything below the header (which prints the jobs level) matches.
    auto body = [](const fleet::FleetReport& r) {
      std::string s = r.to_string();
      return s.substr(s.find('\n') + 1);
    };
    EXPECT_EQ(body(a), body(b)) << "cpus=" << cpus;
    EXPECT_EQ(a.cpus, cpus);
    EXPECT_EQ(a.total_rendezvous_cycles + a.total_handler_cycles +
                  a.total_resume_cycles,
              a.total_downtime_cycles)
        << "cpus=" << cpus;
    EXPECT_GT(a.total_downtime_cycles, 0u);
  }
}

}  // namespace
}  // namespace kshot::obs
