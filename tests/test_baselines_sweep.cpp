// Baseline sweeps over the full Table I suite: the kpatch analogue (clean
// kernel, OS trusted) and the KUP analogue (whole-kernel replacement) must
// both neutralize every CVE — establishing that the *functional* patching
// ability is comparable across systems, so the Table IV/V comparisons really
// measure trust/overhead differences, not capability gaps.
#include <gtest/gtest.h>

#include "baselines/karma_sim.hpp"
#include "baselines/kpatch_sim.hpp"
#include "baselines/kup_sim.hpp"
#include "testbed/testbed.hpp"

namespace kshot::baselines {
namespace {

class BaselineSweep : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> all_ids() {
  std::vector<std::string> ids;
  for (const auto& c : cve::all_cases()) ids.push_back(c.id);
  return ids;
}

TEST_P(BaselineSweep, KpatchNeutralizesOnCleanKernel) {
  const auto& c = cve::find_case(GetParam());
  auto tb = testbed::Testbed::boot(c, {.seed = 0x60D});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;

  KpatchSim kpatch(t.kernel(), t.scheduler());
  auto set = t.server().build_patchset(c.id, t.kernel().os_info());
  ASSERT_TRUE(set.is_ok()) << set.status().to_string();
  auto rep = kpatch.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  ASSERT_TRUE(rep->success) << c.id << ": " << rep->detail;

  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops) << c.id;
  auto benign = t.run_benign();
  ASSERT_TRUE(benign.is_ok());
  EXPECT_FALSE(benign->oops) << c.id;
}

TEST_P(BaselineSweep, KupNeutralizesViaWholeKernelSwap) {
  const auto& c = cve::find_case(GetParam());
  auto tb = testbed::Testbed::boot(c, {.seed = 0x60E});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;

  KupSim kup(t.kernel(), t.scheduler());
  auto post = t.server().build_post_image(c.id, t.compile_options());
  ASSERT_TRUE(post.is_ok());
  auto rep = kup.apply(c.id, *post);
  ASSERT_TRUE(rep.is_ok());
  ASSERT_TRUE(rep->success) << c.id << ": " << rep->detail;

  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops) << c.id;
}

TEST_P(BaselineSweep, KarmaLimitsAreDeterministic) {
  // KARMA either applies cleanly (fitting, code-only patches) or reports a
  // specific capability limit — it must never corrupt the kernel.
  const auto& c = cve::find_case(GetParam());
  auto tb = testbed::Testbed::boot(c, {.seed = 0x60F});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;

  KarmaSim karma(t.kernel(), t.scheduler());
  auto set = t.server().build_patchset(c.id, t.kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  auto rep = karma.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  if (rep->success) {
    auto exploit = t.run_exploit();
    ASSERT_TRUE(exploit.is_ok());
    EXPECT_FALSE(exploit->oops) << c.id;
  } else {
    EXPECT_FALSE(rep->detail.empty());
    // Benign traffic must be untouched by the refused patch.
    auto benign = t.run_benign();
    ASSERT_TRUE(benign.is_ok());
    EXPECT_FALSE(benign->oops) << c.id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, BaselineSweep, ::testing::ValuesIn(all_ids()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace kshot::baselines
