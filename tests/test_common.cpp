// Foundation tests: Status/Result, byte serialization, hex, and the
// deterministic RNG.
#include <gtest/gtest.h>

#include "common/byte_io.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace kshot {
namespace {

// ---- Status / Result ----------------------------------------------------------

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kOk);
  EXPECT_EQ(st.to_string(), "OK");
}

TEST(Status, ErrorFormatting) {
  Status st(Errc::kIntegrityFailure, "MAC mismatch");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.to_string(), "INTEGRITY_FAILURE: MAC mismatch");
}

TEST(Status, EveryCodeHasName) {
  for (int c = 0; c <= static_cast<int>(Errc::kInternal); ++c) {
    EXPECT_STRNE(errc_name(static_cast<Errc>(c)), "UNKNOWN");
  }
}

TEST(Result, ValuePath) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, ErrorPath) {
  Result<int> r(Errc::kNotFound, "nope");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.is_ok());
  std::unique_ptr<int> v = std::move(*r);
  EXPECT_EQ(*v, 7);
}

// ---- ByteWriter / ByteReader ----------------------------------------------------

TEST(ByteIo, ScalarRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0102030405060708ULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.get_u8(), 0xAB);
  EXPECT_EQ(*r.get_u16(), 0x1234);
  EXPECT_EQ(*r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.get_u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteIo, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x11223344);
  EXPECT_EQ(w.bytes(), (Bytes{0x44, 0x33, 0x22, 0x11}));
}

TEST(ByteIo, ReadsPastEndFail) {
  Bytes b = {1, 2};
  ByteReader r(b);
  EXPECT_FALSE(r.get_u32().is_ok());
  EXPECT_TRUE(r.get_u16().is_ok());
  EXPECT_FALSE(r.get_u8().is_ok());
  EXPECT_FALSE(r.skip(1).is_ok());
}

TEST(ByteIo, SpanAndBytes) {
  Bytes b = {1, 2, 3, 4, 5};
  ByteReader r(b);
  auto span = r.get_span(2);
  ASSERT_TRUE(span.is_ok());
  EXPECT_EQ((*span)[0], 1);
  auto rest = r.get_bytes(3);
  ASSERT_TRUE(rest.is_ok());
  EXPECT_EQ(*rest, (Bytes{3, 4, 5}));
}

TEST(ByteIo, InPlaceAccessors) {
  u8 buf[8];
  store_u64(buf, 0xAABBCCDDEEFF0011ULL);
  EXPECT_EQ(load_u64(buf), 0xAABBCCDDEEFF0011ULL);
  store_u32(buf, 0x12345678);
  EXPECT_EQ(load_u32(buf), 0x12345678u);
  store_u16(buf, 0xBEEF);
  EXPECT_EQ(load_u16(buf), 0xBEEF);
}

// ---- Hex --------------------------------------------------------------------------

TEST(Hex, RoundTrip) {
  Bytes b = {0x00, 0x7F, 0x80, 0xFF};
  std::string h = to_hex(b);
  EXPECT_EQ(h, "007f80ff");
  auto back = from_hex(h);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, b);
}

TEST(Hex, AcceptsUppercase) {
  auto b = from_hex("DEADBEEF");
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(*b, (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, RejectsBadInput) {
  EXPECT_FALSE(from_hex("abc").is_ok());   // odd length
  EXPECT_FALSE(from_hex("zz").is_ok());    // bad digit
  EXPECT_TRUE(from_hex("").is_ok());       // empty is fine
}

TEST(Hex, HexdumpShape) {
  Bytes b(20, 'A');
  std::string dump = hexdump(b, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("|AAAAAAAAAAAAAAAA|"), std::string::npos);
}

// ---- RNG ----------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundsRespected) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    u64 v = r.next_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, FillCoversBuffer) {
  Rng r(10);
  Bytes buf = r.next_bytes(1024);
  // Every byte value should appear at least once in 1 KB of random data
  // with overwhelming probability is false; instead check rough entropy:
  // not all bytes equal.
  bool all_same = true;
  for (u8 b : buf) {
    if (b != buf[0]) {
      all_same = false;
      break;
    }
  }
  EXPECT_FALSE(all_same);
}

}  // namespace
}  // namespace kshot
