// Foundation tests: Status/Result, byte serialization, hex, and the
// deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/byte_io.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/sketch.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "fleet/fleet.hpp"

namespace kshot {
namespace {

// ---- Status / Result ----------------------------------------------------------

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kOk);
  EXPECT_EQ(st.to_string(), "OK");
}

TEST(Status, ErrorFormatting) {
  Status st(Errc::kIntegrityFailure, "MAC mismatch");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.to_string(), "INTEGRITY_FAILURE: MAC mismatch");
}

TEST(Status, EveryCodeHasName) {
  for (int c = 0; c <= static_cast<int>(Errc::kInternal); ++c) {
    EXPECT_STRNE(errc_name(static_cast<Errc>(c)), "UNKNOWN");
  }
}

TEST(Result, ValuePath) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, ErrorPath) {
  Result<int> r(Errc::kNotFound, "nope");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.is_ok());
  std::unique_ptr<int> v = std::move(*r);
  EXPECT_EQ(*v, 7);
}

// ---- ByteWriter / ByteReader ----------------------------------------------------

TEST(ByteIo, ScalarRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0102030405060708ULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.get_u8(), 0xAB);
  EXPECT_EQ(*r.get_u16(), 0x1234);
  EXPECT_EQ(*r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.get_u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteIo, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x11223344);
  EXPECT_EQ(w.bytes(), (Bytes{0x44, 0x33, 0x22, 0x11}));
}

TEST(ByteIo, ReadsPastEndFail) {
  Bytes b = {1, 2};
  ByteReader r(b);
  EXPECT_FALSE(r.get_u32().is_ok());
  EXPECT_TRUE(r.get_u16().is_ok());
  EXPECT_FALSE(r.get_u8().is_ok());
  EXPECT_FALSE(r.skip(1).is_ok());
}

TEST(ByteIo, SpanAndBytes) {
  Bytes b = {1, 2, 3, 4, 5};
  ByteReader r(b);
  auto span = r.get_span(2);
  ASSERT_TRUE(span.is_ok());
  EXPECT_EQ((*span)[0], 1);
  auto rest = r.get_bytes(3);
  ASSERT_TRUE(rest.is_ok());
  EXPECT_EQ(*rest, (Bytes{3, 4, 5}));
}

TEST(ByteIo, InPlaceAccessors) {
  u8 buf[8];
  store_u64(buf, 0xAABBCCDDEEFF0011ULL);
  EXPECT_EQ(load_u64(buf), 0xAABBCCDDEEFF0011ULL);
  store_u32(buf, 0x12345678);
  EXPECT_EQ(load_u32(buf), 0x12345678u);
  store_u16(buf, 0xBEEF);
  EXPECT_EQ(load_u16(buf), 0xBEEF);
}

// ---- Hex --------------------------------------------------------------------------

TEST(Hex, RoundTrip) {
  Bytes b = {0x00, 0x7F, 0x80, 0xFF};
  std::string h = to_hex(b);
  EXPECT_EQ(h, "007f80ff");
  auto back = from_hex(h);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, b);
}

TEST(Hex, AcceptsUppercase) {
  auto b = from_hex("DEADBEEF");
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(*b, (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, RejectsBadInput) {
  EXPECT_FALSE(from_hex("abc").is_ok());   // odd length
  EXPECT_FALSE(from_hex("zz").is_ok());    // bad digit
  EXPECT_TRUE(from_hex("").is_ok());       // empty is fine
}

TEST(Hex, HexdumpShape) {
  Bytes b(20, 'A');
  std::string dump = hexdump(b, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("|AAAAAAAAAAAAAAAA|"), std::string::npos);
}

// ---- RNG ----------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundsRespected) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    u64 v = r.next_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, FillCoversBuffer) {
  Rng r(10);
  Bytes buf = r.next_bytes(1024);
  // Every byte value should appear at least once in 1 KB of random data
  // with overwhelming probability is false; instead check rough entropy:
  // not all bytes equal.
  bool all_same = true;
  for (u8 b : buf) {
    if (b != buf[0]) {
      all_same = false;
      break;
    }
  }
  EXPECT_FALSE(all_same);
}

// ---- Sample statistics (shared by bench tables and the fleet report) ---------

TEST(Stats, NearestRankPercentilesOnKnownVector) {
  // 1..100 sorted: nearest-rank pct p lands exactly on sample p.
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_EQ(percentile_sorted(xs, 50), 50.0);
  EXPECT_EQ(percentile_sorted(xs, 95), 95.0);
  EXPECT_EQ(percentile_sorted(xs, 99), 99.0);
  EXPECT_EQ(percentile_sorted(xs, 100), 100.0);
  // Small sample: rank = ceil(0.5 * 3) = 2 -> second element.
  EXPECT_EQ(percentile_sorted({10, 20, 30}, 50), 20.0);
  EXPECT_EQ(percentile_sorted({10, 20, 30}, 95), 30.0);
}

TEST(Stats, SingleSampleIsEveryPercentile) {
  std::vector<double> one{42.5};
  EXPECT_EQ(percentile_sorted(one, 1), 42.5);
  EXPECT_EQ(percentile_sorted(one, 50), 42.5);
  EXPECT_EQ(percentile_sorted(one, 99), 42.5);
  auto s = stats_of(one);
  EXPECT_EQ(s.n, 1);
  EXPECT_EQ(s.mean, 42.5);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 42.5);
  EXPECT_EQ(s.max, 42.5);
  EXPECT_EQ(s.p50, 42.5);
  EXPECT_EQ(s.p95, 42.5);
  EXPECT_EQ(s.p99, 42.5);
}

TEST(Stats, EmptySampleIsAllZero) {
  EXPECT_EQ(percentile_sorted({}, 50), 0.0);
  auto s = stats_of({});
  EXPECT_EQ(s.n, 0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(Stats, MeanAndPopulationStddev) {
  // 2,4,4,4,5,5,7,9: mean 5, population stddev exactly 2.
  auto s = stats_of({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(Stats, FleetPercentilesAgreeWithSharedHelper) {
  std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  auto lat = fleet::percentiles_of(xs);
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(lat.p50, percentile_sorted(xs, 50));
  EXPECT_EQ(lat.p95, percentile_sorted(xs, 95));
  EXPECT_EQ(lat.p99, percentile_sorted(xs, 99));
}

TEST(Stats, NearestRankIntegerBoundaryTable) {
  // Regression: the rank must be ceil(pct * n / 100) with the product formed
  // *before* the divide. The old pct/100.0 * n form accumulated FP error at
  // exact integer ranks (0.47 * 100 = 47.000000000000007) and returned the
  // 48th element for p47 of 100 samples.
  std::vector<double> xs100;
  for (int i = 1; i <= 100; ++i) xs100.push_back(i);
  struct Row {
    double pct;
    double want;
  };
  const Row rows100[] = {{1, 1},    {2, 2},    {25, 25},    {47, 47},
                         {50, 50},  {75, 75},  {94, 94},    {95, 95},
                         {99, 99},  {100, 100}, {0.5, 1},   {47.5, 48},
                         {99.5, 100}};
  for (const Row& r : rows100) {
    EXPECT_EQ(percentile_sorted(xs100, r.pct), r.want) << "pct=" << r.pct;
  }
  // Pinned convention at other sizes: p50 of 10 samples is the 5th sample,
  // p95 of 20 the 19th.
  std::vector<double> xs10, xs20;
  for (int i = 1; i <= 10; ++i) xs10.push_back(i);
  for (int i = 1; i <= 20; ++i) xs20.push_back(i);
  const Row rows10[] = {{10, 1}, {20, 2}, {35, 4}, {50, 5}, {95, 10}, {99, 10}};
  for (const Row& r : rows10) {
    EXPECT_EQ(percentile_sorted(xs10, r.pct), r.want) << "pct=" << r.pct;
  }
  const Row rows20[] = {{5, 1}, {10, 2}, {50, 10}, {95, 19}, {99, 20}};
  for (const Row& r : rows20) {
    EXPECT_EQ(percentile_sorted(xs20, r.pct), r.want) << "pct=" << r.pct;
  }
}

// ---- Streaming quantile sketch ------------------------------------------------

namespace {

// Deterministic right-skewed latency-shaped sample (no RNG needed).
std::vector<double> sketch_fixture(size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double u = static_cast<double>(i % 9973) / 9973.0;
    xs.push_back(25.0 + 4000.0 * u * u * u);
  }
  return xs;
}

}  // namespace

TEST(Sketch, AgreesWithExactSummaryWithinDocumentedBound) {
  const auto xs = sketch_fixture(10'000);
  QuantileSketch sk;
  for (double x : xs) sk.insert(x);
  auto sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sk.count(), xs.size());
  EXPECT_EQ(sk.min(), sorted.front());
  EXPECT_EQ(sk.max(), sorted.back());
  for (double pct : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    double exact = percentile_sorted(sorted, pct);
    double got = sk.quantile(pct / 100.0);
    EXPECT_NEAR(got, exact, exact * (QuantileSketch::kRelativeError + 1e-4))
        << "pct=" << pct;
  }
}

TEST(Sketch, MergeOfHalvesEqualsWholeByteForByte) {
  const auto xs = sketch_fixture(10'000);
  QuantileSketch whole;
  for (double x : xs) whole.insert(x);
  QuantileSketch a, b;
  for (size_t i = 0; i < xs.size(); ++i) (i < xs.size() / 2 ? a : b).insert(xs[i]);
  a.merge(b);
  EXPECT_EQ(a.encode(), whole.encode());
  // Partition independence: any split, merged in any order, encodes the
  // same — this is what makes shard counts invisible in fleet reports.
  QuantileSketch parts[3];
  for (size_t i = 0; i < xs.size(); ++i) parts[i % 3].insert(xs[i]);
  QuantileSketch m1 = parts[2];
  m1.merge(parts[0]);
  m1.merge(parts[1]);
  QuantileSketch m2 = parts[1];
  m2.merge(parts[2]);
  m2.merge(parts[0]);
  EXPECT_EQ(m1.encode(), m2.encode());
  EXPECT_EQ(m1.encode(), whole.encode());
}

TEST(Sketch, EncodeDecodeRoundTrip) {
  const auto xs = sketch_fixture(512);
  QuantileSketch sk;
  for (double x : xs) sk.insert(x);
  Bytes wire = sk.encode();
  auto back = QuantileSketch::decode(ByteSpan(wire));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->encode(), wire);
  EXPECT_EQ(back->quantile(0.95), sk.quantile(0.95));

  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(QuantileSketch::decode(ByteSpan(bad_magic)).is_ok());
  Bytes truncated(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(QuantileSketch::decode(ByteSpan(truncated)).is_ok());
  // Inflate a bucket count so the total disagrees with the header count.
  Bytes miscount = wire;
  miscount[wire.size() - 1] ^= 0x01;
  EXPECT_FALSE(QuantileSketch::decode(ByteSpan(miscount)).is_ok());
}

TEST(Sketch, EmptyAndDegenerateInputs) {
  QuantileSketch empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  QuantileSketch same;
  for (int i = 0; i < 100; ++i) same.insert(77.0);
  // All-equal samples: min == max == 77, and the clamp makes every quantile
  // exact, not merely within the relative bound.
  EXPECT_EQ(same.p50(), 77.0);
  EXPECT_EQ(same.p99(), 77.0);
}

}  // namespace
}  // namespace kshot
