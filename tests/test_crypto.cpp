// Crypto substrate tests against published vectors (FIPS 180-4, RFC 4231,
// RFC 8439, RFC 7748) plus property tests.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/simple_hash.hpp"
#include "crypto/x25519.hpp"

namespace kshot::crypto {
namespace {

std::string digest_hex(const Digest256& d) {
  return to_hex(ByteSpan(d.data(), d.size()));
}

// ---- SHA-256 ---------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  Bytes msg = to_bytes(std::string("abc"));
  EXPECT_EQ(digest_hex(sha256(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  Bytes msg = to_bytes(std::string(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  EXPECT_EQ(digest_hex(sha256(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(digest_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(42);
  Bytes msg = rng.next_bytes(10000);
  for (size_t split : {1ul, 63ul, 64ul, 65ul, 1000ul, 9999ul}) {
    Sha256 ctx;
    ctx.update(ByteSpan(msg).subspan(0, split));
    ctx.update(ByteSpan(msg).subspan(split));
    EXPECT_EQ(ctx.finish(), sha256(msg)) << "split at " << split;
  }
}

class Sha256LengthSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256LengthSweep, PaddingBoundariesDiffer) {
  // Messages of nearby lengths must not collide (exercises the padding
  // logic around block boundaries).
  size_t n = GetParam();
  Bytes a(n, 0x5a);
  Bytes b(n + 1, 0x5a);
  EXPECT_NE(sha256(a), sha256(b));
  if (n > 0) {
    Bytes c(a);
    c[n / 2] ^= 1;
    EXPECT_NE(sha256(a), sha256(c));
  }
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256LengthSweep,
                         ::testing::Values(0, 1, 31, 54, 55, 56, 57, 63, 64,
                                           65, 119, 120, 127, 128, 129, 255));

// ---- HMAC-SHA256 (RFC 4231) -----------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = to_bytes(std::string("Hi There"));
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  Bytes key = to_bytes(std::string("Jefe"));
  Bytes msg = to_bytes(std::string("what do ya want for nothing?"));
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Bytes msg = to_bytes(
      std::string("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  Bytes msg = to_bytes(std::string("payload"));
  Bytes k1(32, 1), k2(32, 1);
  k2[31] = 2;
  EXPECT_FALSE(digest_equal(hmac_sha256(k1, msg), hmac_sha256(k2, msg)));
}

TEST(Hmac, DigestEqualConstantTimeSemantics) {
  Digest256 a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
  b[31] = 0;
  b[0] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

// ---- ChaCha20 (RFC 8439) ----------------------------------------------------

TEST(ChaCha20, Rfc8439BlockFunction) {
  Key256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<u8>(i);
  Nonce96 nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  u8 block[64];
  chacha20_block(key, nonce, 1, block);
  EXPECT_EQ(to_hex(ByteSpan(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  Key256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<u8>(i);
  Nonce96 nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  Bytes plaintext = to_bytes(std::string(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it."));
  Bytes ct = chacha20(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(ByteSpan(ct).subspan(0, 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Decryption is the same operation.
  EXPECT_EQ(chacha20(key, nonce, 1, ct), plaintext);
}

class ChaChaRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(ChaChaRoundTrip, EncryptDecrypt) {
  Rng rng(GetParam() * 977 + 1);
  Key256 key;
  rng.fill(MutByteSpan(key.data(), key.size()));
  Nonce96 nonce;
  rng.fill(MutByteSpan(nonce.data(), nonce.size()));
  Bytes msg = rng.next_bytes(GetParam());
  Bytes ct = chacha20(key, nonce, 1, msg);
  if (!msg.empty()) {
    EXPECT_NE(ct, msg);
  }
  EXPECT_EQ(chacha20(key, nonce, 1, ct), msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChaChaRoundTrip,
                         ::testing::Values(0, 1, 63, 64, 65, 128, 1000, 4096,
                                           65536));

// ---- X25519 (RFC 7748) -------------------------------------------------------

TEST(X25519, Rfc7748Vector1) {
  auto scalar = from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  auto point = from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  X25519Key s{}, p{};
  std::copy(scalar->begin(), scalar->end(), s.begin());
  std::copy(point->begin(), point->end(), p.begin());
  X25519Key out = x25519(s, p);
  EXPECT_EQ(to_hex(ByteSpan(out.data(), 32)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  auto scalar = from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  auto point = from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  X25519Key s{}, p{};
  std::copy(scalar->begin(), scalar->end(), s.begin());
  std::copy(point->begin(), point->end(), p.begin());
  X25519Key out = x25519(s, p);
  EXPECT_EQ(to_hex(ByteSpan(out.data(), 32)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748DiffieHellman) {
  // Alice/Bob keys from RFC 7748 §6.1.
  auto a_priv_h = from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  auto b_priv_h = from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  X25519Key a_priv{}, b_priv{};
  std::copy(a_priv_h->begin(), a_priv_h->end(), a_priv.begin());
  std::copy(b_priv_h->begin(), b_priv_h->end(), b_priv.begin());

  X25519Key a_pub = x25519_base(a_priv);
  X25519Key b_pub = x25519_base(b_priv);
  EXPECT_EQ(to_hex(ByteSpan(a_pub.data(), 32)),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(to_hex(ByteSpan(b_pub.data(), 32)),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  X25519Key shared_a = dh_shared(a_priv, b_pub);
  X25519Key shared_b = dh_shared(b_priv, a_pub);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(to_hex(ByteSpan(shared_a.data(), 32)),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, GeneratedPairsAgree) {
  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    DhKeyPair a = dh_generate(rng);
    DhKeyPair b = dh_generate(rng);
    EXPECT_EQ(dh_shared(a.private_key, b.public_key),
              dh_shared(b.private_key, a.public_key));
    EXPECT_NE(a.public_key, b.public_key);
  }
}

// ---- AEAD envelope -----------------------------------------------------------

TEST(Aead, RoundTrip) {
  Rng rng(11);
  Key256 key;
  rng.fill(MutByteSpan(key.data(), key.size()));
  Nonce96 nonce{};
  Bytes msg = rng.next_bytes(777);
  SealedBox box = seal(key, nonce, msg);
  auto open_r = open(key, box);
  ASSERT_TRUE(open_r.is_ok());
  EXPECT_EQ(*open_r, msg);
}

TEST(Aead, SerializeRoundTrip) {
  Rng rng(12);
  Key256 key;
  rng.fill(MutByteSpan(key.data(), key.size()));
  Nonce96 nonce{};
  nonce[0] = 9;
  SealedBox box = seal(key, nonce, rng.next_bytes(100));
  Bytes wire = box.serialize();
  auto parsed = SealedBox::deserialize(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->nonce, box.nonce);
  EXPECT_EQ(parsed->ciphertext, box.ciphertext);
  EXPECT_EQ(parsed->mac, box.mac);
}

TEST(Aead, TamperedCiphertextRejected) {
  Key256 key{};
  key[0] = 1;
  Nonce96 nonce{};
  Bytes msg = to_bytes(std::string("patch payload"));
  SealedBox box = seal(key, nonce, msg);
  box.ciphertext[3] ^= 0x80;
  auto r = open(key, box);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::kIntegrityFailure);
}

TEST(Aead, TamperedMacRejected) {
  Key256 key{};
  Nonce96 nonce{};
  SealedBox box = seal(key, nonce, to_bytes(std::string("x")));
  box.mac[0] ^= 1;
  EXPECT_FALSE(open(key, box).is_ok());
}

TEST(Aead, WrongKeyRejected) {
  Key256 k1{}, k2{};
  k2[5] = 7;
  Nonce96 nonce{};
  SealedBox box = seal(k1, nonce, to_bytes(std::string("secret")));
  EXPECT_FALSE(open(k2, box).is_ok());
}

TEST(Aead, DeriveKeyLabelsDiffer) {
  Bytes secret = to_bytes(std::string("shared"));
  EXPECT_NE(derive_key(secret, "a"), derive_key(secret, "b"));
  EXPECT_EQ(derive_key(secret, "a"), derive_key(secret, "a"));
}

// ---- Simple hashes -----------------------------------------------------------

TEST(SimpleHash, SdbmKnownBehaviour) {
  // sdbm("") == 0 and single characters hash to themselves.
  EXPECT_EQ(sdbm({}), 0u);
  Bytes a = {'a'};
  EXPECT_EQ(sdbm(a), static_cast<u64>('a'));
  Bytes ab = {'a', 'b'};
  u64 expect = 'b' + (sdbm(a) << 6) + (sdbm(a) << 16) - sdbm(a);
  EXPECT_EQ(sdbm(ab), expect);
}

TEST(SimpleHash, Crc32KnownValue) {
  Bytes msg = to_bytes(std::string("123456789"));
  EXPECT_EQ(crc32(msg), 0xCBF43926u);  // classic check value
}

TEST(SimpleHash, Fnv1aKnownValue) {
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);
  Bytes a = {'a'};
  EXPECT_EQ(fnv1a(a), 0xaf63dc4c8601ec8cULL);
}

TEST(SimpleHash, SensitivityProperty) {
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    Bytes m = rng.next_bytes(64);
    Bytes m2 = m;
    m2[static_cast<size_t>(rng.next_below(64))] ^= 0x10;
    EXPECT_NE(crc32(m), crc32(m2));
    EXPECT_NE(fnv1a(m), fnv1a(m2));
  }
}

}  // namespace
}  // namespace kshot::crypto
