// Differential testing of the whole compilation pipeline: randomly generated
// ksrc programs are executed both by the AST reference evaluator and by the
// machine (compiled with every optimization combination); results — values,
// oopses, trap codes, and final global state — must agree exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "kcc/compiler.hpp"
#include "kcc/eval.hpp"
#include "kcc/parser.hpp"
#include "machine/machine.hpp"

namespace kshot::kcc {
namespace {

// ---- Random program generator ------------------------------------------------

class ProgramGen {
 public:
  explicit ProgramGen(u64 seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream src;
    int nglobals = 2 + static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < nglobals; ++i) {
      globals_.push_back("g" + std::to_string(i));
      src << "global g" << i << " = "
          << static_cast<i64>(rng_.next_below(200)) - 100 << ";\n";
    }
    // One inline helper of supported shape.
    src << "inline fn helper(h0) {\n"
        << "  let hv = h0 " << arith_op() << " "
        << (1 + rng_.next_below(9)) << ";\n"
        << "  if (hv > " << rng_.next_below(100) << ") {\n"
        << "    hv = hv & 1023;\n"
        << "  }\n"
        << "  return hv;\n"
        << "}\n";
    fns_.push_back({"helper", 1});

    int nfns = 2 + static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < nfns; ++i) {
      std::string name = "f" + std::to_string(i);
      int params = 1 + static_cast<int>(rng_.next_below(2));
      src << "fn " << name << "(";
      std::vector<std::string> scope;
      for (int p = 0; p < params; ++p) {
        if (p) src << ", ";
        src << "p" << p;
        scope.push_back("p" + std::to_string(p));
      }
      src << ") {\n";
      gen_block(src, scope, 1, 3);
      src << "  return " << expr(scope, 2) << ";\n}\n";
      fns_.push_back({name, params});
    }
    entry_ = fns_.back().first;
    entry_params_ = fns_.back().second;
    return src.str();
  }

  const std::string& entry() const { return entry_; }
  int entry_params() const { return entry_params_; }
  const std::vector<std::string>& globals() const { return globals_; }
  Rng& rng() { return rng_; }

 private:
  std::string arith_op() {
    static const char* kOps[] = {"+", "-", "*", "&", "|", "^", "%", "/",
                                 "<<", ">>"};
    return kOps[rng_.next_below(10)];
  }
  std::string cmp_op() {
    static const char* kOps[] = {"<", "<=", ">", ">=", "==", "!="};
    return kOps[rng_.next_below(6)];
  }

  std::string expr(const std::vector<std::string>& scope, int depth) {
    u64 pick = rng_.next_below(depth <= 0 ? 3 : 6);
    switch (pick) {
      case 0:
        return std::to_string(static_cast<i64>(rng_.next_below(64)) - 8);
      case 1:
        // Occasionally a constant needing the wide-immediate path.
        if (rng_.next_below(8) == 0) return "0x1234567890";
        return std::to_string(rng_.next_below(1000));
      case 2:
        if (!scope.empty()) return scope[rng_.next_below(scope.size())];
        return globals_[rng_.next_below(globals_.size())];
      case 3:
        return globals_[rng_.next_below(globals_.size())];
      case 4: {
        // Call an earlier function (no recursion -> guaranteed termination).
        if (fns_.empty()) return "1";
        auto& [name, arity] = fns_[rng_.next_below(fns_.size())];
        std::string call = name + "(";
        for (int i = 0; i < arity; ++i) {
          if (i) call += ", ";
          call += expr(scope, depth - 1);
        }
        return call + ")";
      }
      default: {
        const char* op = rng_.next_below(4) == 0 ? nullptr : nullptr;
        (void)op;
        bool cmp = rng_.next_below(5) == 0;
        return "(" + expr(scope, depth - 1) + " " +
               (cmp ? cmp_op() : arith_op()) + " " + expr(scope, depth - 1) +
               ")";
      }
    }
  }

  void gen_block(std::ostringstream& src, std::vector<std::string>& scope,
                 int indent, int budget) {
    std::string ind(static_cast<size_t>(indent) * 2, ' ');
    int stmts = 1 + static_cast<int>(rng_.next_below(4));
    for (int s = 0; s < stmts && budget > 0; ++s) {
      switch (rng_.next_below(6)) {
        case 0: {  // let
          std::string name =
              "v" + std::to_string(indent) + "_" + std::to_string(s) + "_" +
              std::to_string(rng_.next_below(1000));
          src << ind << "let " << name << " = " << expr(scope, 2) << ";\n";
          scope.push_back(name);
          break;
        }
        case 1:  // assign local or global
          if (!scope.empty() && rng_.next_below(2) == 0) {
            src << ind << scope[rng_.next_below(scope.size())] << " = "
                << expr(scope, 2) << ";\n";
          } else {
            src << ind << globals_[rng_.next_below(globals_.size())] << " = "
                << expr(scope, 2) << ";\n";
          }
          break;
        case 2: {  // if/else
          src << ind << "if (" << expr(scope, 1) << " " << cmp_op() << " "
              << expr(scope, 1) << ") {\n";
          size_t mark = scope.size();
          gen_block(src, scope, indent + 1, budget - 1);
          scope.resize(mark);
          src << ind << "} else {\n";
          gen_block(src, scope, indent + 1, budget - 1);
          scope.resize(mark);
          src << ind << "}\n";
          break;
        }
        case 3: {  // bounded while
          std::string i = "i" + std::to_string(indent) + "_" +
                          std::to_string(rng_.next_below(1000));
          src << ind << "let " << i << " = 0;\n";
          src << ind << "while (" << i << " < "
              << (1 + rng_.next_below(6)) << ") {\n";
          src << ind << "  " << i << " = " << i << " + 1;\n";
          size_t mark = scope.size();
          scope.push_back(i);
          gen_block(src, scope, indent + 1, budget - 2);
          scope.resize(mark);
          src << ind << "}\n";
          break;
        }
        case 4:  // guarded bug
          if (rng_.next_below(3) == 0) {
            src << ind << "if (" << expr(scope, 1) << " == "
                << rng_.next_below(16) << ") {\n"
                << ind << "  bug(" << (1 + rng_.next_below(200)) << ");\n"
                << ind << "}\n";
          }
          break;
        default:  // expression statement (call for effect)
          src << ind << expr(scope, 2) << ";\n";
          break;
      }
    }
  }

  Rng rng_;
  std::vector<std::string> globals_;
  std::vector<std::pair<std::string, int>> fns_;
  std::string entry_;
  int entry_params_ = 1;
};

// ---- Machine-side executor -----------------------------------------------------

struct MachineWorld {
  machine::Machine m{16 << 20, 0xA0000, 0x20000};
  KernelImage img;
  bool ok = false;

  explicit MachineWorld(const Module& mod, const CompileOptions& opts) {
    auto compiled = compile_module(mod, opts);
    if (!compiled.is_ok()) {
      ADD_FAILURE() << "compile failed: " << compiled.status().to_string();
      return;
    }
    img = std::move(*compiled);
    if (!m.mem()
             .write(img.text_base, img.text, machine::AccessMode::smm())
             .is_ok()) {
      ADD_FAILURE() << "text load failed";
      return;
    }
    Bytes data = img.data_image();
    if (!data.empty() &&
        !m.mem().write(img.data_base, data, machine::AccessMode::smm())
             .is_ok()) {
      ADD_FAILURE() << "data load failed";
      return;
    }
    ok = true;
  }

  struct Outcome {
    bool oops = false;
    u64 trap = 0;
    u64 value = 0;
    bool completed = true;
  };

  Outcome call(const std::string& fn, const std::vector<u64>& args) {
    Outcome out;
    const Symbol* sym = img.find_symbol(fn);
    if (sym == nullptr) {
      out.completed = false;
      return out;
    }
    auto& cpu = m.cpu();
    cpu = machine::CpuState{};
    for (size_t i = 0; i < args.size(); ++i) cpu.regs[1 + i] = args[i];
    cpu.sp() = (12 << 20) - 8;
    m.mem().write_u64(cpu.sp(), machine::kReturnSentinel,
                      machine::AccessMode::normal());
    cpu.rip = sym->addr;
    auto res = m.run(20'000'000);
    switch (res.kind) {
      case machine::StepKind::kRetTop:
        out.value = cpu.regs[0];
        break;
      case machine::StepKind::kOops:
        out.oops = true;
        out.trap = res.info;
        break;
      default:
        out.completed = false;
    }
    return out;
  }

  Result<u64> global(const std::string& name) {
    const GlobalSym* g = img.find_global(name);
    if (!g) return Status{Errc::kNotFound, "no global"};
    return m.mem().read_u64(g->addr, machine::AccessMode::normal());
  }
};

// ---- The differential test ---------------------------------------------------

struct FuzzConfig {
  u64 seed;
  bool inlining;
  bool constfold;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(DifferentialFuzz, CompiledMatchesEvaluator) {
  FuzzConfig cfg = GetParam();
  ProgramGen gen(cfg.seed);
  std::string source = gen.generate();

  auto mod = parse(source);
  ASSERT_TRUE(mod.is_ok()) << mod.status().to_string() << "\n" << source;

  CompileOptions opts;
  opts.text_base = 0x100000;
  opts.data_base = 0x400000;
  opts.enable_inlining = cfg.inlining;
  opts.enable_constfold = cfg.constfold;

  MachineWorld world(*mod, opts);
  ASSERT_TRUE(world.ok);
  AstEvaluator ref(*mod);

  Rng args_rng(cfg.seed ^ 0xA46);
  for (int round = 0; round < 10; ++round) {
    std::vector<u64> args;
    for (int i = 0; i < gen.entry_params(); ++i) {
      args.push_back(args_rng.next_below(2000));
    }
    auto expect = ref.call(gen.entry(), args);
    ASSERT_TRUE(expect.is_ok()) << expect.status().to_string();

    auto got = world.call(gen.entry(), args);
    ASSERT_TRUE(got.completed) << "machine did not finish\n" << source;
    EXPECT_EQ(got.oops, expect->oops) << "round " << round << "\n" << source;
    if (expect->oops) {
      EXPECT_EQ(got.trap, expect->trap_code) << source;
      // A kernel oops desynchronizes global state between the two worlds
      // (the machine stops mid-statement); stop comparing further rounds.
      break;
    }
    EXPECT_EQ(got.value, expect->value) << "round " << round << "\n" << source;

    for (const auto& g : gen.globals()) {
      auto mg = world.global(g);
      auto eg = ref.global(g);
      ASSERT_TRUE(mg.is_ok() && eg.is_ok());
      EXPECT_EQ(*mg, *eg) << "global " << g << " diverged\n" << source;
    }
  }
}

std::vector<FuzzConfig> fuzz_configs() {
  std::vector<FuzzConfig> configs;
  for (u64 seed = 1; seed <= 25; ++seed) {
    configs.push_back({seed, true, false});
    configs.push_back({seed, false, false});
    configs.push_back({seed, true, true});
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, DifferentialFuzz, ::testing::ValuesIn(fuzz_configs()),
    [](const ::testing::TestParamInfo<FuzzConfig>& info) {
      const FuzzConfig& c = info.param;
      return "seed" + std::to_string(c.seed) +
             (c.inlining ? "_inline" : "_noinline") +
             (c.constfold ? "_fold" : "");
    });

}  // namespace
}  // namespace kshot::kcc
