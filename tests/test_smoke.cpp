// End-to-end smoke test: boot a vulnerable kernel, confirm the exploit
// fires, live-patch with KShot, confirm the exploit is dead and benign
// behaviour is preserved.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace kshot {
namespace {

TEST(Smoke, ExploitFiresOnVulnerableKernel) {
  const auto& c = cve::find_case("CVE-2017-17806");
  auto tb = testbed::Testbed::boot(c);
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();

  auto exploit = (*tb)->run_exploit();
  ASSERT_TRUE(exploit.is_ok()) << exploit.status().to_string();
  EXPECT_TRUE(exploit->oops);
  EXPECT_EQ(exploit->trap_code, c.trap_code);

  auto benign = (*tb)->run_benign();
  ASSERT_TRUE(benign.is_ok()) << benign.status().to_string();
  EXPECT_FALSE(benign->oops);
}

TEST(Smoke, LivePatchNeutralizesExploit) {
  const auto& c = cve::find_case("CVE-2017-17806");
  auto tb = testbed::Testbed::boot(c);
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;

  auto benign_before = t.run_benign();
  ASSERT_TRUE(benign_before.is_ok());

  auto report = t.kshot().live_patch(c.id);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->success)
      << "smm status " << static_cast<u64>(report->smm_status);
  EXPECT_GT(report->stats.functions, 0u);
  EXPECT_GT(report->downtime_cycles, 0u);

  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok()) << exploit.status().to_string();
  EXPECT_FALSE(exploit->oops) << "exploit still fires after patch";
  EXPECT_EQ(exploit->value, cve::kEinval);

  auto benign_after = t.run_benign();
  ASSERT_TRUE(benign_after.is_ok());
  EXPECT_FALSE(benign_after->oops);
  EXPECT_EQ(benign_after->value, benign_before->value)
      << "patch changed benign behaviour";
}

TEST(Smoke, RollbackRestoresVulnerableCode) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c);
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;

  ASSERT_TRUE(t.kshot().live_patch(c.id).is_ok());
  auto patched = t.run_exploit();
  ASSERT_TRUE(patched.is_ok());
  EXPECT_FALSE(patched->oops);

  auto rb = t.kshot().rollback();
  ASSERT_TRUE(rb.is_ok()) << rb.status().to_string();
  EXPECT_TRUE(rb->success);

  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops) << "rollback did not restore original code";
}

}  // namespace
}  // namespace kshot
