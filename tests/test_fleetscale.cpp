// Planet-scale fleet tests: content-addressed relay tier (single-flight,
// digest verification, fan-out tree) and the sharded FleetCoordinator
// (modeled population + sampled ground truth + byte-identical reports).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/hex.hpp"
#include "crypto/sha256.hpp"
#include "fleetscale/fleetscale.hpp"
#include "fleetscale/relay.hpp"

namespace kshot::fleetscale {
namespace {

Bytes payload_bytes() {
  Bytes b;
  for (int i = 0; i < 733; ++i) b.push_back(static_cast<u8>(i * 31 + 7));
  return b;
}

std::string digest_hex_of(const Bytes& b) {
  auto d = crypto::sha256(ByteSpan(b));
  return to_hex(ByteSpan(d.data(), d.size()));
}

/// Origin stub counting real fetches; can be told to serve wrong bytes.
struct Origin {
  Bytes good = payload_bytes();
  std::atomic<int> fetches{0};
  bool serve_corrupt = false;

  PatchRelay::ParentFetch fn() {
    return [this](const std::string&) -> Result<std::shared_ptr<const Bytes>> {
      fetches.fetch_add(1);
      Bytes b = good;
      if (serve_corrupt) b[0] ^= 0xFF;
      return std::make_shared<const Bytes>(std::move(b));
    };
  }
};

// ---- PatchRelay ---------------------------------------------------------------

TEST(PatchRelay, ColdFetchIsSingleFlight) {
  Origin origin;
  PatchRelay relay("r0", origin.fn());
  const std::string digest = digest_hex_of(origin.good);

  constexpr int kPullers = 16;
  std::vector<std::thread> pool;
  std::atomic<int> ok{0};
  for (int i = 0; i < kPullers; ++i) {
    pool.emplace_back([&] {
      auto got = relay.fetch(digest);
      if (got.is_ok() && **got == payload_bytes()) ok.fetch_add(1);
    });
  }
  for (auto& t : pool) t.join();

  EXPECT_EQ(ok.load(), kPullers);
  // Exactly one puller ran the parent fetch; everyone else waited on the
  // shared future and counts as a hit.
  EXPECT_EQ(origin.fetches.load(), 1);
  RelayStats s = relay.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<u64>(kPullers - 1));
  EXPECT_EQ(s.pulls(), static_cast<u64>(kPullers));
  EXPECT_EQ(s.bytes_from_parent, payload_bytes().size());
  EXPECT_EQ(s.bytes_served, payload_bytes().size() * kPullers);
}

TEST(PatchRelay, ParentDigestMismatchRejectedAndRetriable) {
  Origin origin;
  origin.serve_corrupt = true;
  PatchRelay relay("r0", origin.fn());
  const std::string digest = digest_hex_of(origin.good);

  auto bad = relay.fetch(digest);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), Errc::kIntegrityFailure);
  EXPECT_EQ(relay.stats().parent_digest_rejects, 1u);

  // The failed fill was not cached: once the parent heals, the next pull
  // refetches instead of replaying the failure.
  origin.serve_corrupt = false;
  auto good = relay.fetch(digest);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(**good, payload_bytes());
  EXPECT_EQ(origin.fetches.load(), 2);
}

TEST(PatchRelay, CorruptedCacheEntryEvictedAndRefetchedNeverServed) {
  Origin origin;
  PatchRelay relay("r0", origin.fn());
  const std::string digest = digest_hex_of(origin.good);

  ASSERT_TRUE(relay.fetch(digest).is_ok());
  ASSERT_TRUE(relay.corrupt_cached_entry(digest));

  auto got = relay.fetch(digest);
  ASSERT_TRUE(got.is_ok());
  // The serve returned verified bytes, not the rotted cache entry.
  EXPECT_EQ(**got, payload_bytes());
  RelayStats s = relay.stats();
  EXPECT_EQ(s.corruption_evictions, 1u);
  EXPECT_EQ(origin.fetches.load(), 2);
}

TEST(PatchRelay, ServePopulationCountsBulkPullsAsHits) {
  Origin origin;
  PatchRelay relay("r0", origin.fn());
  const std::string digest = digest_hex_of(origin.good);

  ASSERT_TRUE(relay.serve_population(digest, 1000).is_ok());
  RelayStats s = relay.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 999u);
  EXPECT_EQ(s.bytes_served, payload_bytes().size() * 1000);
  EXPECT_EQ(origin.fetches.load(), 1);
}

TEST(RelayTier, TreeFillHitsOriginExactlyOnce) {
  Origin origin;
  RelayTier tier(13, 3, origin.fn());
  const std::string digest = digest_hex_of(origin.good);

  for (u32 r = 0; r < tier.size(); ++r) {
    auto got = tier.relay(r).fetch(digest);
    ASSERT_TRUE(got.is_ok()) << "relay " << r;
    EXPECT_EQ(**got, payload_bytes());
  }
  // One origin fetch for the whole tree: relay 0 filled from the origin,
  // every other relay from its parent.
  EXPECT_EQ(origin.fetches.load(), 1);
  EXPECT_EQ(tier.origin_fetches(), 1u);
  // Heap-shaped depths for fanout 3: 0 | 1 1 1 | 2 ...
  EXPECT_EQ(tier.depth(0), 0u);
  EXPECT_EQ(tier.depth(1), 1u);
  EXPECT_EQ(tier.depth(3), 1u);
  EXPECT_EQ(tier.depth(4), 2u);
  EXPECT_EQ(tier.depth(12), 2u);
  // Every relay missed exactly once (its own cold fill); direct pulls from
  // children count as hits on the parent.
  RelayStats total = tier.total_stats();
  EXPECT_EQ(total.misses, 13u);
}

// ---- FleetCoordinator ---------------------------------------------------------

FleetScaleOptions small_opts() {
  FleetScaleOptions o;
  o.targets = 200;
  o.shards = 3;
  o.sample = 2;
  o.relays = 4;
  o.relay_fanout = 2;
  o.jobs = 2;
  o.plan.canary = 16;
  o.plan.growth = 4.0;
  return o;
}

TEST(FleetScale, ValidateRejectsImpossibleTopologies) {
  auto expect_invalid = [](FleetScaleOptions o) {
    Status st = FleetCoordinator::validate(o);
    EXPECT_FALSE(st.is_ok());
    EXPECT_EQ(st.code(), Errc::kInvalidArgument);
  };
  FleetScaleOptions o = small_opts();
  o.shards = 0;
  expect_invalid(o);
  o = small_opts();
  o.relays = 0;
  expect_invalid(o);
  o = small_opts();
  o.targets = 0;
  expect_invalid(o);
  o = small_opts();
  o.sample = 201;  // sample > targets
  expect_invalid(o);
  o = small_opts();
  o.sample = 0;  // no ground truth and no override
  expect_invalid(o);
  o = small_opts();
  o.sample = 0;
  o.calibration_override_us = 80.0;  // override restores validity
  EXPECT_TRUE(FleetCoordinator::validate(o).is_ok());
  o = small_opts();
  o.relay_fanout = 0;
  expect_invalid(o);
  o = small_opts();
  o.plan.growth = 0.5;
  expect_invalid(o);
}

TEST(FleetScale, CleanCampaignAppliesEveryTarget) {
  FleetCoordinator fc(small_opts());
  auto rep = fc.run();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  EXPECT_FALSE(rep->aborted);
  EXPECT_EQ(rep->applied, 200u);
  EXPECT_EQ(rep->failed, 0u);
  EXPECT_EQ(rep->pending, 0u);
  EXPECT_GT(rep->calibrated_downtime_us, 0.0);
  // Sketch covers exactly the applied population.
  EXPECT_EQ(rep->downtime_sketch.count(), 200u);
  EXPECT_GE(rep->downtime_us.p99, rep->downtime_us.p50);
  // Every target pulled the envelope once, plus one parent-edge fetch per
  // non-root relay when its cache filled; the origin was hit exactly once.
  EXPECT_EQ(rep->relay.pulls(), 200u + (4 - 1));
  EXPECT_EQ(rep->relay.misses, 4u);  // one cold fill per relay
  EXPECT_EQ(rep->origin_fetches, 1u);
  EXPECT_GT(rep->envelope_bytes, 0u);
  EXPECT_GT(rep->modeled_makespan_us, 0.0);
  // Ground truth ran per wave.
  EXPECT_EQ(rep->sampled_runs, 2u * rep->waves.size());
  EXPECT_EQ(rep->sampled_applied, rep->sampled_runs);

  // Per-target state array agrees with the aggregate counters.
  u64 applied = 0;
  for (auto s : fc.states()) applied += s == ScaleTargetState::kApplied;
  EXPECT_EQ(applied, rep->applied);
}

TEST(FleetScale, ReportByteIdenticalAcrossJobsAndShardCounts) {
  auto run_with = [](u32 jobs, u32 shards) {
    FleetScaleOptions o = small_opts();
    o.jobs = jobs;
    o.shards = shards;
    FleetCoordinator fc(o);
    auto rep = fc.run();
    EXPECT_TRUE(rep.is_ok());
    return *rep;
  };
  FleetScaleReport a = run_with(1, 1);
  FleetScaleReport b = run_with(8, 7);
  FleetScaleReport c = run_with(2, 64);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.to_string(), c.to_string());
  // The sketches fold byte-identically no matter how the population was
  // partitioned across shards.
  EXPECT_EQ(a.downtime_sketch.encode(), b.downtime_sketch.encode());
  EXPECT_EQ(a.downtime_sketch.encode(), c.downtime_sketch.encode());
  EXPECT_EQ(a.e2e_sketch.encode(), c.e2e_sketch.encode());
  EXPECT_EQ(a.metrics.to_json(), c.metrics.to_json());
}

TEST(FleetScale, ReportByteIdenticalAcrossTopologyAtEveryCpuCount) {
  // cpus is target semantics (it changes the modeled numbers); jobs/shards
  // are coordinator topology (they must never change a byte). Pin each CPU
  // count and vary topology around it.
  for (u32 cpus : {1u, 4u, 16u}) {
    auto run_with = [&](u32 jobs, u32 shards) {
      FleetScaleOptions o = small_opts();
      o.jobs = jobs;
      o.shards = shards;
      o.cpus = cpus;
      FleetCoordinator fc(o);
      auto rep = fc.run();
      EXPECT_TRUE(rep.is_ok()) << rep.status().to_string();
      return *rep;
    };
    FleetScaleReport a = run_with(1, 1);
    FleetScaleReport b = run_with(8, 7);
    EXPECT_EQ(a.to_string(), b.to_string()) << "cpus=" << cpus;
    EXPECT_EQ(a.cpus, cpus);
    // The sampled ground-truth decomposition obeys the exact-sum identity.
    EXPECT_EQ(a.sampled_rendezvous_cycles + a.sampled_handler_cycles +
                  a.sampled_resume_cycles,
              a.sampled_downtime_cycles)
        << "cpus=" << cpus;
    EXPECT_GT(a.sampled_downtime_cycles, 0u);
  }
}

TEST(FleetScale, DivergenceBetweenModelAndSampleAbortsWave) {
  FleetScaleOptions o = small_opts();
  // Pretend the model was calibrated to a wildly wrong base downtime: the
  // very first sampled wave measures reality and pulls the plug.
  o.calibration_override_us = 50'000.0;
  o.sample = 1;
  FleetCoordinator fc(o);
  auto rep = fc.run();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  EXPECT_TRUE(rep->aborted);
  EXPECT_EQ(rep->abort_wave, 0u);
  EXPECT_NE(rep->abort_reason.find("divergence"), std::string::npos);
  ASSERT_EQ(rep->waves.size(), 1u);
  EXPECT_TRUE(rep->waves[0].diverged);
  // The wave never committed: the whole population is still pending.
  EXPECT_EQ(rep->applied, 0u);
  EXPECT_EQ(rep->pending, rep->targets);
}

TEST(FleetScale, ModeledFailureRateRollsBackWaveAndAborts) {
  FleetScaleOptions o = small_opts();
  o.fail_permille = 500;  // ~half the modeled population fails
  o.plan.abort_failure_rate = 0.25;
  FleetCoordinator fc(o);
  auto rep = fc.run();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();

  EXPECT_TRUE(rep->aborted);
  EXPECT_EQ(rep->abort_wave, 0u);
  EXPECT_EQ(rep->applied, 0u);
  ASSERT_EQ(rep->waves.size(), 1u);
  EXPECT_EQ(rep->waves[0].rolled_back + rep->waves[0].failed,
            rep->waves[0].size);
  // Rolled-back samples must not leak into the campaign percentiles.
  EXPECT_EQ(rep->downtime_sketch.count(), 0u);
  // Untouched targets stay pending.
  EXPECT_EQ(rep->pending, rep->targets - rep->waves[0].size);
  u64 rolled = 0;
  for (auto s : fc.states()) rolled += s == ScaleTargetState::kRolledBack;
  EXPECT_EQ(rolled, rep->rolled_back);
}

TEST(FleetScale, RelayCountersIdenticalAcrossJobs) {
  auto stats_with = [](u32 jobs) {
    FleetScaleOptions o = small_opts();
    o.jobs = jobs;
    FleetCoordinator fc(o);
    auto rep = fc.run();
    EXPECT_TRUE(rep.is_ok());
    return rep->relay;
  };
  RelayStats s1 = stats_with(1);
  RelayStats s8 = stats_with(8);
  EXPECT_EQ(s1.hits, s8.hits);
  EXPECT_EQ(s1.misses, s8.misses);
  EXPECT_EQ(s1.bytes_served, s8.bytes_served);
  EXPECT_EQ(s1.bytes_from_parent, s8.bytes_from_parent);
}

TEST(FleetScale, TraceCaptureIsDeterministic) {
  FleetScaleOptions o = small_opts();
  o.capture_trace = true;
  FleetCoordinator f1(o), f2(o);
  auto r1 = f1.run();
  auto r2 = f2.run();
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  EXPECT_FALSE(r1->trace_json.empty());
  EXPECT_EQ(r1->trace_json, r2->trace_json);
  EXPECT_NE(r1->trace_json.find("wave_start"), std::string::npos);
}

}  // namespace
}  // namespace kshot::fleetscale
