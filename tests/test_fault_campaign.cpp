// Fault-injection campaign: drives the end-to-end pipeline across a grid of
// fault type x rate x seed while asserting the transactional invariant —
// every run either fully applies the patch or leaves the kernel
// byte-identical to its pre-patch snapshot. Also pins down determinism (the
// same seed reproduces the same fault sequence and outcome) and the MITM
// behaviour of the chunked path with retries disabled.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace kshot::core {
namespace {

using netsim::FaultPlan;
using netsim::FaultType;
using testbed::Testbed;
using testbed::TestbedOptions;

constexpr FaultType kAllFaultTypes[] = {
    FaultType::kDrop,      FaultType::kCorrupt, FaultType::kTruncate,
    FaultType::kDuplicate, FaultType::kReorder, FaultType::kDelay,
};

struct KernelSnapshot {
  Bytes text;
  Bytes data;
};

// Reads through SMM mode so page attributes (mem_X is normally unreadable)
// cannot hide a partial write from the comparison.
KernelSnapshot snapshot_kernel(Testbed& t) {
  const auto& lay = t.kernel().layout();
  KernelSnapshot s;
  s.text.resize(t.kernel().image().text.size());
  EXPECT_TRUE(t.machine()
                  .mem()
                  .read(lay.text_base, MutByteSpan(s.text.data(),
                                                   s.text.size()),
                        machine::AccessMode::smm())
                  .is_ok());
  s.data.resize(lay.data_max);
  EXPECT_TRUE(t.machine()
                  .mem()
                  .read(lay.data_base, MutByteSpan(s.data.data(),
                                                   s.data.size()),
                        machine::AccessMode::smm())
                  .is_ok());
  return s;
}

bool kernel_identical(Testbed& t, const KernelSnapshot& snap) {
  KernelSnapshot now = snapshot_kernel(t);
  return now.text == snap.text && now.data == snap.data;
}

// ---- The campaign grid -------------------------------------------------------

TEST(FaultCampaign, EveryRunAppliesOrLeavesKernelUntouched) {
  // >= 200 seeded runs: 6 fault types x 3 rates x 12 seeds = 216. One boot
  // per fault type; the injector is reseeded per run, and successful runs
  // are rolled back over a clean link so every run starts from the same
  // pre-patch kernel (CVE-2014-0196 is a type-1 patch — no variable edits —
  // so rollback restores the kernel byte-identically).
  const auto& c = cve::find_case("CVE-2014-0196");
  constexpr double kRates[] = {0.1, 0.3, 0.5};
  constexpr int kSeedsPerCell = 12;

  int runs = 0;
  int successes = 0;
  int retried_runs = 0;
  for (FaultType type : kAllFaultTypes) {
    TestbedOptions opts;
    opts.fault_plan = FaultPlan{};  // replaced per run via reset()
    auto tb = Testbed::boot(c, opts);
    ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
    Testbed& t = **tb;
    auto* inj = t.fault_injector();
    ASSERT_NE(inj, nullptr);

    KernelSnapshot snap = snapshot_kernel(t);
    for (double rate : kRates) {
      for (int s = 0; s < kSeedsPerCell; ++s) {
        u64 seed = 0xCA119A16 + 1000003ull * static_cast<u64>(runs);
        inj->reset(FaultPlan::uniform(type, rate), seed);
        auto rep = t.kshot().live_patch(c.id);
        ++runs;

        SCOPED_TRACE(std::string(netsim::fault_type_name(type)) + " rate " +
                     std::to_string(rate) + " seed " + std::to_string(seed));
        if (rep.is_ok() && rep->success) {
          ++successes;
          EXPECT_TRUE(t.kshot().is_patched(c.entry_function));
          EXPECT_GE(rep->resilience.fetch_attempts, 1u);
          EXPECT_GE(rep->resilience.apply_attempts, 1u);
          if (rep->resilience.fetch_attempts +
                  rep->resilience.apply_attempts > 2) {
            ++retried_runs;
            EXPECT_GT(rep->resilience.backoff_us, 0.0);
          }
          // Undo over a clean link; the next run starts pristine.
          inj->reset(FaultPlan{}, seed);
          ASSERT_TRUE(t.kshot().rollback()->success);
        } else {
          EXPECT_FALSE(t.kshot().is_patched(c.entry_function));
        }
        // The invariant: fully applied (and rolled back above) or untouched.
        EXPECT_TRUE(kernel_identical(t, snap));
      }
    }
  }
  EXPECT_GE(runs, 200);
  EXPECT_GT(successes, 0);
  // Retries must actually be happening (delay-only cells never need them,
  // but drop/corrupt cells at 30-50% certainly do).
  EXPECT_GT(retried_runs, 0);
}

TEST(FaultCampaign, SameSeedReproducesSameOutcome) {
  const auto& c = cve::find_case("CVE-2014-0196");
  struct Outcome {
    bool ok = false;
    bool success = false;
    u32 fetch_attempts = 0;
    u32 apply_attempts = 0;
    u64 faults = 0;
    u64 messages = 0;
  };
  auto run = [&](u64 fault_seed) {
    TestbedOptions opts;
    FaultPlan plan;
    plan.rates.drop = 0.2;
    plan.rates.corrupt = 0.15;
    opts.fault_plan = plan;
    opts.fault_seed = fault_seed;
    auto tb = Testbed::boot(c, opts);
    EXPECT_TRUE(tb.is_ok());
    Testbed& t = **tb;
    auto rep = t.kshot().live_patch(c.id);
    Outcome o;
    o.ok = rep.is_ok();
    if (rep.is_ok()) {
      o.success = rep->success;
      o.fetch_attempts = rep->resilience.fetch_attempts;
      o.apply_attempts = rep->resilience.apply_attempts;
    }
    o.faults = t.fault_injector()->fault_stats().total();
    o.messages = t.fault_injector()->message_index();
    return o;
  };
  Outcome a = run(42);
  Outcome b = run(42);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.fetch_attempts, b.fetch_attempts);
  EXPECT_EQ(a.apply_attempts, b.apply_attempts);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(FaultCampaign, InjectorSameSeedSameByteSequence) {
  FaultPlan plan;
  plan.rates.drop = 0.1;
  plan.rates.corrupt = 0.1;
  plan.rates.truncate = 0.1;
  plan.rates.duplicate = 0.1;
  plan.rates.reorder = 0.1;
  plan.rates.delay = 0.1;
  netsim::FaultInjector a(plan, 7);
  netsim::FaultInjector b(plan, 7);
  Rng payload(99);
  for (int i = 0; i < 300; ++i) {
    Bytes m = payload.next_bytes(1 + payload.next_below(64));
    EXPECT_EQ(a.transfer(Bytes(m)), b.transfer(Bytes(m)));
  }
  EXPECT_GT(a.fault_stats().total(), 0u);
  EXPECT_EQ(a.fault_stats().total(), b.fault_stats().total());
}

TEST(FaultCampaign, ScriptedDropForcesExactlyOneFetchRetry) {
  // Message 0 is the fetch request; dropping it costs one round trip and
  // nothing else. The counters in the report must show exactly that.
  const auto& c = cve::find_case("CVE-2014-0196");
  TestbedOptions opts;
  FaultPlan plan;
  plan.script = {{0, FaultType::kDrop}};
  opts.fault_plan = plan;
  auto tb = Testbed::boot(c, opts);
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  auto rep = t.kshot().live_patch(c.id);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_TRUE(rep->success);
  EXPECT_EQ(rep->resilience.fetch_attempts, 2u);
  EXPECT_EQ(rep->resilience.apply_attempts, 1u);
  EXPECT_EQ(rep->resilience.session_aborts, 0u);
  EXPECT_GT(rep->resilience.backoff_us, 0.0);
  EXPECT_FALSE(rep->resilience.retries_exhausted);
  EXPECT_EQ(t.fault_injector()->fault_stats().drops, 1u);
}

// ---- Chunked path under staging faults ---------------------------------------

TEST(FaultCampaign, ChunkedStreamSurvivesStagingFaults) {
  // The sealed chunks cross the reserved region via the untrusted helper
  // app, not the network channel; a FaultInjector plugged in as the stage
  // tamperer garbles them there. Failed streams must abort + restage.
  const auto& c = cve::find_case("CVE-2016-7914");  // ~15KB, ~9 chunks
  const FaultType types[] = {FaultType::kCorrupt, FaultType::kDrop,
                             FaultType::kDuplicate};
  int successes = 0;
  bool any_restage = false;
  for (FaultType type : types) {
    for (u64 s = 0; s < 4; ++s) {
      auto tb = Testbed::boot(c, {});
      ASSERT_TRUE(tb.is_ok());
      Testbed& t = **tb;
      netsim::FaultInjector staging(FaultPlan::uniform(type, 0.1),
                                    0xF417 + s);
      t.kshot().set_stage_tamperer(staging.as_tamperer());

      KernelSnapshot snap = snapshot_kernel(t);
      auto rep = t.kshot().live_patch_chunked(c.id, 2048);
      SCOPED_TRACE(std::string(netsim::fault_type_name(type)) + " seed " +
                   std::to_string(0xF417 + s));
      if (rep.is_ok() && rep->success) {
        ++successes;
        EXPECT_TRUE(t.kshot().is_patched(c.entry_function));
        if (rep->resilience.apply_attempts > 1) {
          any_restage = true;
          EXPECT_GT(rep->resilience.session_aborts, 0u);
        }
      } else {
        EXPECT_EQ(t.kshot().handler().patches_applied(), 0u);
        EXPECT_TRUE(kernel_identical(t, snap));
      }
    }
  }
  EXPECT_GT(successes, 0);
  EXPECT_TRUE(any_restage);  // at least one run recovered via abort+restage
}

// ---- MITM on individual chunks, fail-closed without retries ------------------

TEST(FaultMitm, CorruptedChunkFailsClosedWithoutRetry) {
  const auto& c = cve::find_case("CVE-2016-7914");
  TestbedOptions opts;
  opts.retry_policy = RetryPolicy::none();
  auto tb = Testbed::boot(c, opts);
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  FaultPlan plan;
  plan.script = {{2, FaultType::kCorrupt}};  // garble the third chunk only
  netsim::FaultInjector mitm(plan, 0x317F);
  t.kshot().set_stage_tamperer(mitm.as_tamperer());

  KernelSnapshot snap = snapshot_kernel(t);
  auto rep = t.kshot().live_patch_chunked(c.id, 2048);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_FALSE(rep->success);
  EXPECT_EQ(rep->smm_status, SmmStatus::kMacFailure);
  EXPECT_EQ(rep->resilience.apply_attempts, 1u);
  EXPECT_EQ(rep->resilience.session_aborts, 1u);
  EXPECT_EQ(t.kshot().handler().patches_applied(), 0u);
  EXPECT_TRUE(kernel_identical(t, snap));
}

TEST(FaultMitm, ReplayedStaleChunkRejectedWithoutRetry) {
  // A stale duplicate of the previous chunk arrives in place of the next
  // one: the per-chunk nonce ordering rejects it and nothing applies.
  const auto& c = cve::find_case("CVE-2016-7914");
  TestbedOptions opts;
  opts.retry_policy = RetryPolicy::none();
  auto tb = Testbed::boot(c, opts);
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  FaultPlan plan;
  plan.script = {{2, FaultType::kDuplicate}};
  netsim::FaultInjector mitm(plan, 0x317F);
  t.kshot().set_stage_tamperer(mitm.as_tamperer());

  KernelSnapshot snap = snapshot_kernel(t);
  auto rep = t.kshot().live_patch_chunked(c.id, 2048);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_FALSE(rep->success);
  EXPECT_EQ(rep->smm_status, SmmStatus::kChunkOutOfOrder);
  EXPECT_EQ(t.kshot().handler().patches_applied(), 0u);
  EXPECT_TRUE(kernel_identical(t, snap));
}

TEST(FaultMitm, RetryRecoversFromSingleChunkCorruption) {
  // Same attack as CorruptedChunkFailsClosedWithoutRetry, but with the
  // default retry budget: the second attempt streams clean and applies.
  const auto& c = cve::find_case("CVE-2016-7914");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  FaultPlan plan;
  plan.script = {{1, FaultType::kCorrupt}};
  netsim::FaultInjector mitm(plan, 0x317F);
  t.kshot().set_stage_tamperer(mitm.as_tamperer());

  auto rep = t.kshot().live_patch_chunked(c.id, 2048);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_TRUE(rep->success);
  EXPECT_EQ(rep->resilience.apply_attempts, 2u);
  EXPECT_EQ(rep->resilience.session_aborts, 1u);
  EXPECT_GT(rep->resilience.backoff_us, 0.0);
  EXPECT_TRUE(t.kshot().is_patched(c.entry_function));

  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
}

// ---- Single-shot path under staging faults -----------------------------------

TEST(FaultMitm, TamperedSealedBlobRetriesWithFreshSession) {
  // Corrupting the whole-package sealed blob burns the session (single-use
  // keys); the retry must begin a new session rather than replay the old.
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  FaultPlan plan;
  plan.script = {{0, FaultType::kCorrupt}};  // first staged blob
  netsim::FaultInjector mitm(plan, 0x90B);
  t.kshot().set_stage_tamperer(mitm.as_tamperer());

  u64 sessions_before = t.kshot().handler().sessions_started();
  auto rep = t.kshot().live_patch(c.id);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_TRUE(rep->success);
  EXPECT_EQ(rep->resilience.apply_attempts, 2u);
  EXPECT_EQ(rep->resilience.session_aborts, 1u);
  EXPECT_EQ(t.kshot().handler().sessions_started() - sessions_before, 2u);
  EXPECT_GT(t.kshot().handler().sessions_aborted(), 0u);
}

}  // namespace
}  // namespace kshot::core
