// SGX simulation tests: EPC isolation from kernel and SMM, ECALL gating,
// measurement, attestation reports, and enclave teardown scrubbing.
#include <gtest/gtest.h>

#include <cstring>

#include "sgx/sgx.hpp"

namespace kshot::sgx {
namespace {

constexpr PhysAddr kEpcBase = 0x40'0000;
constexpr size_t kEpcSize = 1 << 20;

class EchoEnclave final : public Enclave {
 public:
  EchoEnclave() : Enclave("echo", to_bytes(std::string("echo-v1"))) {}

  Result<Bytes> handle_ecall(int fn, ByteSpan input) override {
    switch (fn) {
      case 1:  // echo
        return Bytes(input.begin(), input.end());
      case 2:  // store into EPC
        KSHOT_RETURN_IF_ERROR(epc_write(0, input));
        return Bytes{};
      case 3:  // load from EPC
        return epc_read(0, input.empty() ? 8 : input[0]);
      case 4: {  // report over input
        Report r = create_report(input);
        Bytes out(sizeof(Report), 0);
        std::memcpy(out.data(), &r, sizeof(Report));
        return out;
      }
      default:
        return Status{Errc::kInvalidArgument, "bad fn"};
    }
  }
};

struct World {
  machine::Machine m{8 << 20, 0xA0000, 0x20000};
  SgxRuntime rt{m, kEpcBase, kEpcSize, 0x5EED};
};

TEST(Sgx, EcallBeforeLoadFails) {
  EchoEnclave e;
  auto r = e.ecall(1, {});
  EXPECT_EQ(r.status().code(), Errc::kFailedPrecondition);
}

TEST(Sgx, EcallDispatch) {
  World w;
  EchoEnclave e;
  ASSERT_TRUE(w.rt.load_enclave(e, 64 << 10).is_ok());
  Bytes msg = {1, 2, 3};
  auto r = e.ecall(1, msg);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, msg);
  EXPECT_FALSE(e.ecall(99, {}).is_ok());
}

TEST(Sgx, EpcHiddenFromKernelAndSmm) {
  World w;
  EchoEnclave e;
  ASSERT_TRUE(w.rt.load_enclave(e, 64 << 10).is_ok());
  Bytes secret = to_bytes(std::string("patch plaintext"));
  ASSERT_TRUE(e.ecall(2, secret).is_ok());

  // Kernel-privileged scan of the EPC range is denied.
  for (PhysAddr a = kEpcBase; a < kEpcBase + (64 << 10);
       a += machine::kPageSize) {
    EXPECT_FALSE(
        w.m.mem().read_bytes(a, 16, machine::AccessMode::normal()).is_ok());
    EXPECT_FALSE(
        w.m.mem().read_bytes(a, 16, machine::AccessMode::smm()).is_ok());
    EXPECT_FALSE(w.m.mem()
                     .write(a, secret, machine::AccessMode::normal())
                     .is_ok());
  }
  // The enclave itself reads it back fine.
  Bytes len = {static_cast<u8>(secret.size())};
  auto back = e.ecall(3, len);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, secret);
}

TEST(Sgx, TwoEnclavesAreMutuallyIsolated) {
  World w;
  EchoEnclave a, b;
  ASSERT_TRUE(w.rt.load_enclave(a, 64 << 10).is_ok());
  ASSERT_TRUE(w.rt.load_enclave(b, 64 << 10).is_ok());
  EXPECT_NE(a.id(), b.id());
  Bytes sa = {9, 9, 9};
  ASSERT_TRUE(a.ecall(2, sa).is_ok());
  Bytes sb = {1, 1, 1};
  ASSERT_TRUE(b.ecall(2, sb).is_ok());
  Bytes n = {3};
  EXPECT_EQ(*a.ecall(3, n), sa);
  EXPECT_EQ(*b.ecall(3, n), sb);
}

TEST(Sgx, EpcExhaustion) {
  World w;
  EchoEnclave big;
  EXPECT_EQ(w.rt.load_enclave(big, kEpcSize * 2).code(),
            Errc::kResourceExhausted);
}

TEST(Sgx, EpcSliceBoundsChecked) {
  World w;
  EchoEnclave e;
  ASSERT_TRUE(w.rt.load_enclave(e, 4096).is_ok());
  Bytes big(8192, 1);
  auto r = e.ecall(2, big);
  EXPECT_EQ(r.status().code(), Errc::kOutOfRange);
}

TEST(Sgx, MeasurementIsCodeIdentity) {
  EchoEnclave e1, e2;
  EXPECT_EQ(e1.mrenclave(), e2.mrenclave());
  EXPECT_EQ(e1.mrenclave(), crypto::sha256(to_bytes(std::string("echo-v1"))));
}

TEST(Sgx, ReportVerifies) {
  World w;
  EchoEnclave e;
  ASSERT_TRUE(w.rt.load_enclave(e, 64 << 10).is_ok());
  Bytes data = to_bytes(std::string("dh-public-key"));
  auto out = e.ecall(4, data);
  ASSERT_TRUE(out.is_ok());
  Report r;
  std::memcpy(&r, out->data(), sizeof(Report));
  EXPECT_TRUE(w.rt.verify_report(r));

  // Any forgery breaks the MAC.
  Report forged = r;
  forged.report_data[0] ^= 1;
  EXPECT_FALSE(w.rt.verify_report(forged));
  forged = r;
  forged.mrenclave[5] ^= 1;
  EXPECT_FALSE(w.rt.verify_report(forged));
}

TEST(Sgx, ReportsFromOtherRuntimeRejected) {
  World w1;
  machine::Machine m2(8 << 20, 0xA0000, 0x20000);
  SgxRuntime rt2(m2, kEpcBase, kEpcSize, 0xD1FFE7);  // different fuses
  EchoEnclave e;
  ASSERT_TRUE(w1.rt.load_enclave(e, 64 << 10).is_ok());
  Bytes data = {1};
  auto out = e.ecall(4, data);
  Report r;
  std::memcpy(&r, out->data(), sizeof(Report));
  // A different machine has different fuses.
  EXPECT_FALSE(rt2.verify_report(r));
}

TEST(Sgx, DestroyScrubsAndReleases) {
  World w;
  EchoEnclave e;
  ASSERT_TRUE(w.rt.load_enclave(e, 64 << 10).is_ok());
  PhysAddr slice = kEpcBase;  // first allocation starts at the base
  Bytes secret(32, 0xEE);
  ASSERT_TRUE(e.ecall(2, secret).is_ok());
  ASSERT_TRUE(w.rt.destroy_enclave(e).is_ok());

  // Pages are ordinary memory again — and hold zeros, not the secret.
  auto r = w.m.mem().read_bytes(slice, 32, machine::AccessMode::normal());
  ASSERT_TRUE(r.is_ok());
  // destroy_enclave scrubbed the slice to zeros.
  for (u8 b : *r) EXPECT_EQ(b, 0);
  EXPECT_FALSE(e.ecall(1, {}).is_ok());
}

}  // namespace
}  // namespace kshot::sgx
