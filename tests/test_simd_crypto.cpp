// SIMD crypto differential: the 4-lane u32x4 kernels behind SHA-256 and
// ChaCha20 must be bit-identical to the scalar references on every input
// shape — standard NIST/RFC vectors, every length 0..257, every unaligned
// source offset 0..15, and multi-block sizes spanning the 4-lane ChaCha20
// threshold. Every case here flips the runtime toggle itself, so one run of
// this binary exercises both code paths — no separate CI matrix leg needed
// to keep the scalar fallback honest.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "crypto/simd.hpp"

namespace kshot::crypto {
namespace {

/// RAII toggle so a failing ASSERT can't leave the process-wide switch off.
class SimdMode {
 public:
  explicit SimdMode(bool on) : prev_(simd_enabled()) { set_simd_enabled(on); }
  ~SimdMode() { set_simd_enabled(prev_); }

 private:
  bool prev_;
};

std::string hex_digest(ByteSpan data) {
  Digest256 d = sha256(data);
  return to_hex(ByteSpan(d.data(), d.size()));
}

ByteSpan span_of(const std::string& s) {
  return ByteSpan(reinterpret_cast<const u8*>(s.data()), s.size());
}

TEST(SimdSha256, NistVectorsPassInBothModes) {
  const std::pair<std::string, std::string> vectors[] = {
      {"",
       "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc",
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
  };
  for (bool simd : {false, true}) {
    SimdMode mode(simd);
    for (const auto& [msg, want] : vectors) {
      EXPECT_EQ(hex_digest(span_of(msg)), want)
          << (simd ? "simd" : "scalar") << " mode, message \"" << msg << "\"";
    }
  }
}

TEST(SimdSha256, MillionAsPassesInBothModes) {
  std::string msg(1'000'000, 'a');
  const char* want =
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
  for (bool simd : {false, true}) {
    SimdMode mode(simd);
    EXPECT_EQ(hex_digest(span_of(msg)), want);
  }
}

TEST(SimdSha256, EveryLengthAndOffsetMatchesScalar) {
  Rng rng(0x51D0);
  // One oversized backing buffer; each case hashes buf[off .. off+len).
  Bytes buf(16 + 257 + 64);
  rng.fill(MutByteSpan(buf.data(), buf.size()));
  for (size_t len = 0; len <= 257; ++len) {
    for (size_t off = 0; off < 16; ++off) {
      ByteSpan in(buf.data() + off, len);
      std::string scalar_d, simd_d;
      {
        SimdMode mode(false);
        scalar_d = hex_digest(in);
      }
      {
        SimdMode mode(true);
        simd_d = hex_digest(in);
      }
      ASSERT_EQ(scalar_d, simd_d) << "len=" << len << " off=" << off;
    }
  }
}

TEST(SimdChaCha20, Rfc8439SunscreenVectorPassesInBothModes) {
  // RFC 8439 §2.4.2.
  Key256 key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<u8>(i);
  Nonce96 nonce{};
  nonce[7] = 0x4a;
  const std::string plain =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const char* want_hex =
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d";
  for (bool simd : {false, true}) {
    SimdMode mode(simd);
    Bytes data(plain.begin(), plain.end());
    chacha20_xor(key, nonce, 1, MutByteSpan(data.data(), data.size()));
    EXPECT_EQ(to_hex(ByteSpan(data.data(), data.size())), want_hex)
        << (simd ? "simd" : "scalar");
  }
}

TEST(SimdChaCha20, EveryLengthAndOffsetMatchesScalar) {
  Rng rng(0xC8AC4A);
  Key256 key{};
  rng.fill(MutByteSpan(key.data(), key.size()));
  Nonce96 nonce{};
  rng.fill(MutByteSpan(nonce.data(), nonce.size()));
  Bytes buf(16 + 257);
  rng.fill(MutByteSpan(buf.data(), buf.size()));
  for (size_t len = 0; len <= 257; ++len) {
    for (size_t off = 0; off < 16; ++off) {
      Bytes a(buf.begin() + static_cast<std::ptrdiff_t>(off),
              buf.begin() + static_cast<std::ptrdiff_t>(off + len));
      Bytes b = a;
      {
        SimdMode mode(false);
        chacha20_xor(key, nonce, 7, MutByteSpan(a.data(), a.size()));
      }
      {
        SimdMode mode(true);
        chacha20_xor(key, nonce, 7, MutByteSpan(b.data(), b.size()));
      }
      ASSERT_EQ(a, b) << "len=" << len << " off=" << off;
    }
  }
}

TEST(SimdChaCha20, MultiBlockSizesAcrossTheFourLaneThreshold) {
  // The 4-lane keystream engages at >= 256 bytes; cover sizes around every
  // interesting boundary: below, at, odd tails past whole 4-block groups.
  Rng rng(0x4B10C5);
  Key256 key{};
  rng.fill(MutByteSpan(key.data(), key.size()));
  Nonce96 nonce{};
  rng.fill(MutByteSpan(nonce.data(), nonce.size()));
  for (size_t len : {255u, 256u, 257u, 319u, 320u, 511u, 512u, 513u, 1024u,
                     1087u, 4096u, 4099u}) {
    Bytes a = rng.next_bytes(len);
    Bytes b = a;
    {
      SimdMode mode(false);
      chacha20_xor(key, nonce, 1, MutByteSpan(a.data(), a.size()));
    }
    {
      SimdMode mode(true);
      chacha20_xor(key, nonce, 1, MutByteSpan(b.data(), b.size()));
    }
    ASSERT_EQ(a, b) << "len=" << len;
  }
}

}  // namespace
}  // namespace kshot::crypto
