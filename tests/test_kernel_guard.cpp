// SMM kernel-text guard tests (§IV-A "kernel introspection module for
// kernel protection"): any unauthorized kernel-text modification is detected
// and reverted from SMM, while KShot's own trampolines and the dynamic
// tracer's pad rewrites are recognized as legitimate.
#include <gtest/gtest.h>

#include "kernel/ftrace.hpp"
#include "testbed/testbed.hpp"

namespace kshot::core {
namespace {

using testbed::Testbed;

std::unique_ptr<Testbed> boot_guarded(const char* id = "CVE-2014-0196") {
  auto tb = Testbed::boot(cve::find_case(id), {});
  EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
  EXPECT_TRUE((*tb)->kshot().arm_kernel_guard().is_ok());
  return std::move(*tb);
}

TEST(KernelGuard, CleanKernelStaysClean) {
  auto t = boot_guarded();
  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_EQ(rep->text_bytes_restored, 0u);
  EXPECT_TRUE(rep->clean());
}

TEST(KernelGuard, DetectsAndRevertsBackdoor) {
  auto t = boot_guarded();
  // A rootkit plants a backdoor: an unconditional trap in the middle of
  // sys_hash (kernel text is writable at kernel privilege).
  const kcc::Symbol* sym = t->kernel().image().find_symbol("sys_hash");
  Bytes backdoor = {0x72, 0x66};  // trap 0x66
  ASSERT_TRUE(t->machine()
                  .mem()
                  .write(sym->addr + sym->size / 2, backdoor,
                         machine::AccessMode::normal())
                  .is_ok());
  // The write may land mid-instruction, so the symptom is either a clean
  // trap or an undecodable stream — any abnormal outcome counts.
  auto broken = t->run_syscall(cve::kSysHash, {3, 0, 0, 0, 0});
  EXPECT_TRUE(!broken.is_ok() || broken->oops);

  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_EQ(rep->text_bytes_restored, 2u);

  auto healed = t->run_syscall(cve::kSysHash, {3, 0, 0, 0, 0});
  ASSERT_TRUE(healed.is_ok());
  EXPECT_FALSE(healed->oops);
}

TEST(KernelGuard, WhitelistsKshotTrampolines) {
  auto t = boot_guarded();
  const auto& c = t->cve_case();
  ASSERT_TRUE(t->kshot().live_patch(c.id)->success);
  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_EQ(rep->text_bytes_restored, 0u)
      << "guard reverted KShot's own trampoline";
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
}

TEST(KernelGuard, WhitelistsFtracePads) {
  auto t = boot_guarded();
  kernel::FtraceRuntime ftrace(t->kernel());
  ASSERT_TRUE(ftrace.install().is_ok());
  ASSERT_TRUE(ftrace.enable("sys_hash").is_ok());
  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_EQ(rep->text_bytes_restored, 0u)
      << "guard reverted the tracer's pad rewrite";
  // Tracing still works.
  ASSERT_TRUE(t->run_syscall(cve::kSysHash, {1, 0, 0, 0, 0}).is_ok());
  EXPECT_GE(*ftrace.hits(), 1u);
}

TEST(KernelGuard, RollbackRestoresPristineState) {
  auto t = boot_guarded();
  const auto& c = t->cve_case();
  ASSERT_TRUE(t->kshot().live_patch(c.id)->success);
  ASSERT_TRUE(t->kshot().rollback()->success);
  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok());
  EXPECT_EQ(rep->text_bytes_restored, 0u);
}

TEST(KernelGuard, GuardPlusWatchdogAutonomouslyHeals) {
  // Backdoor planted by a periodically acting rootkit; the periodic-SMI
  // watchdog (no explicit introspect calls) keeps reverting it.
  testbed::TestbedOptions o;
  o.workload_threads = 1;
  o.watchdog_interval_cycles = 30'000;
  auto tb = Testbed::boot(cve::find_case("CVE-2014-0196"), o);
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;
  ASSERT_TRUE(t.kshot().arm_kernel_guard().is_ok());

  class BackdoorRootkit final : public kernel::KernelModule {
   public:
    explicit BackdoorRootkit(u64 addr) : addr_(addr) {}
    std::string name() const override { return "backdoor"; }
    void on_tick(machine::Machine& m, kernel::Kernel&) override {
      Bytes payload = {0x72, 0x66};
      m.mem().write(addr_, payload, machine::AccessMode::normal());
      ++attempts;
    }
    u64 addr_;
    u64 attempts = 0;
  };
  const kcc::Symbol* sym = t.kernel().image().find_symbol("k_busy");
  auto rootkit = std::make_shared<BackdoorRootkit>(sym->addr + 20);
  t.kernel().insmod(rootkit);

  t.scheduler().run(2000, 64);
  EXPECT_GT(rootkit->attempts, 0u);
  // Remove the rootkit, let one more watchdog sweep pass, verify healed.
  ASSERT_TRUE(t.kernel().rmmod("backdoor").is_ok());
  ASSERT_TRUE(t.kshot().introspect().is_ok());
  auto r = t.run_syscall(cve::kSysBusy, {16, 0, 0, 0, 0});
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r->oops);
}

TEST(KernelGuard, RequiresInstall) {
  auto tb = Testbed::boot(cve::find_case("CVE-2014-0196"),
                          {.install_kshot = false});
  ASSERT_TRUE(tb.is_ok());
  EXPECT_EQ((*tb)->kshot().arm_kernel_guard().code(),
            Errc::kFailedPrecondition);
}

}  // namespace
}  // namespace kshot::core
