// Cumulative (batch) updates: several CVE fixes merged into one kernel and
// shipped as a single KShot patch set — the distro point-release scenario —
// plus pipeline property sweeps over synthetic patch sizes.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace kshot::cve {
namespace {

TEST(Batch, CombineRejectsMixedKernels) {
  auto b = combine_cases({"CVE-2014-0196", "CVE-2016-5195"});
  ASSERT_FALSE(b.is_ok());
  EXPECT_EQ(b.status().code(), Errc::kInvalidArgument);
}

TEST(Batch, CombineRejectsNameCollisions) {
  // Both define scpct_assoce_update.
  auto b = combine_cases({"CVE-2014-5077", "CVE-2015-1421"});
  ASSERT_FALSE(b.is_ok());
}

TEST(Batch, CombineRejectsEmpty) {
  EXPECT_FALSE(combine_cases({}).is_ok());
}

TEST(Batch, SingleKshotPatchFixesThreeCves) {
  auto batch = combine_cases(
      {"CVE-2014-0196", "CVE-2014-5077", "CVE-2015-5707"});
  ASSERT_TRUE(batch.is_ok()) << batch.status().to_string();

  auto tb = testbed::Testbed::boot(batch->merged, {.workload_threads = 2});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;
  for (const auto& part : batch->parts) {
    ASSERT_TRUE(t.kernel()
                    .register_syscall(part.syscall_nr, part.entry_function)
                    .is_ok());
  }

  // All three exploits fire before...
  for (const auto& part : batch->parts) {
    auto e = t.run_syscall(part.syscall_nr, part.exploit_args);
    ASSERT_TRUE(e.is_ok());
    EXPECT_TRUE(e->oops) << part.id;
  }

  // ...one live patch, one OS pause...
  auto rep = t.kshot().live_patch(batch->merged.id);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success);
  EXPECT_GE(rep->stats.functions, 3u);

  // ...and all three are dead, with benign behaviour preserved.
  for (const auto& part : batch->parts) {
    auto e = t.run_syscall(part.syscall_nr, part.exploit_args);
    ASSERT_TRUE(e.is_ok());
    EXPECT_FALSE(e->oops) << part.id;
    auto b = t.run_syscall(part.syscall_nr, part.benign_args);
    ASSERT_TRUE(b.is_ok());
    EXPECT_FALSE(b->oops) << part.id;
  }
  t.scheduler().run(500, 64);
  EXPECT_EQ(t.scheduler().stats().oopses, 0u);
}

TEST(Batch, RollbackUndoesTheWholeBatch) {
  auto batch = combine_cases({"CVE-2014-7842", "CVE-2015-1333"});
  ASSERT_TRUE(batch.is_ok());
  auto tb = testbed::Testbed::boot(batch->merged, {});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;
  for (const auto& part : batch->parts) {
    ASSERT_TRUE(t.kernel()
                    .register_syscall(part.syscall_nr, part.entry_function)
                    .is_ok());
  }
  ASSERT_TRUE(t.kshot().live_patch(batch->merged.id)->success);
  ASSERT_TRUE(t.kshot().rollback()->success);
  for (const auto& part : batch->parts) {
    auto e = t.run_syscall(part.syscall_nr, part.exploit_args);
    ASSERT_TRUE(e.is_ok());
    EXPECT_TRUE(e->oops) << part.id << " not restored by batch rollback";
  }
}

TEST(Batch, MixedTypesInOneBatch) {
  // Type 1 + Type 2 + Type 3 in a single cumulative update.
  auto batch = combine_cases(
      {"CVE-2014-0196", "CVE-2014-4157", "CVE-2014-3690"});
  ASSERT_TRUE(batch.is_ok()) << batch.status().to_string();
  auto tb = testbed::Testbed::boot(batch->merged, {});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;
  for (const auto& part : batch->parts) {
    ASSERT_TRUE(t.kernel()
                    .register_syscall(part.syscall_nr, part.entry_function)
                    .is_ok());
  }
  auto rep = t.kshot().live_patch(batch->merged.id);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success);
  for (const auto& part : batch->parts) {
    auto e = t.run_syscall(part.syscall_nr, part.exploit_args);
    ASSERT_TRUE(e.is_ok());
    EXPECT_FALSE(e->oops) << part.id;
  }
}

// ---- Synthetic size sweep through the full pipeline -----------------------------

class SizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SizeSweep, FullPipelineAtSize) {
  size_t size = GetParam();
  CveCase c = testbed::make_size_sweep_case(size);
  testbed::TestbedOptions opts;
  opts.layout = testbed::layout_for_patch_bytes(size);
  auto tb = testbed::Testbed::boot(c, opts);
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;

  auto pre = t.run_exploit();
  ASSERT_TRUE(pre.is_ok());
  EXPECT_TRUE(pre->oops);

  auto rep = t.kshot().live_patch(c.id);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success);
  // The staged payload should be in the ballpark of the target size.
  if (size >= 1024) {
    EXPECT_GT(rep->stats.code_bytes, size / 2);
    EXPECT_LT(rep->stats.code_bytes, size * 2);
  }

  auto post = t.run_exploit();
  ASSERT_TRUE(post.is_ok());
  EXPECT_FALSE(post->oops);
  auto benign = t.run_benign();
  ASSERT_TRUE(benign.is_ok());
  EXPECT_FALSE(benign->oops);

  // Downtime grows monotonically-ish with size but stays bounded.
  EXPECT_GT(rep->smm.modeled_total_us, 70.0);   // fixed floor
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(64, 256, 1024, 4096, 16384,
                                           65536, 262144));

}  // namespace
}  // namespace kshot::cve
