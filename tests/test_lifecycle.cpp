// Patch-stack lifecycle in SMM: supersede semantics (retirement + provides
// inheritance), the dependency fence on apply and out-of-order revert,
// mem_X slot reclamation and reuse, in-place splicing, and the fleet's
// applied-inventory health probe. Structural invariants (kernel text and
// mem_X byte-compared through SMM mode) back every status-level assertion.
#include <gtest/gtest.h>

#include "cve/suite.hpp"
#include "fleet/fleet.hpp"
#include "testbed/testbed.hpp"

namespace kshot {
namespace {

const char* const kA = "CVE-2016-2543";
const char* const kB = "CVE-2016-4578";
const char* const kC = "CVE-2016-4580";

// Reads through SMM mode so page attributes (mem_X is normally unreadable)
// cannot hide a partial write from the comparison.
Bytes read_region(testbed::Testbed& t, u64 base, size_t len) {
  Bytes b(len);
  EXPECT_TRUE(t.machine()
                  .mem()
                  .read(base, MutByteSpan(b.data(), b.size()),
                        machine::AccessMode::smm())
                  .is_ok());
  return b;
}

Bytes text_bytes(testbed::Testbed& t) {
  return read_region(t, t.kernel().layout().text_base,
                     t.kernel().image().text.size());
}

Bytes memx_bytes(testbed::Testbed& t) {
  const auto& lay = t.kernel().layout();
  return read_region(t, lay.mem_x_base(), lay.mem_x_size);
}

// Canonical rendering of the kQueryApplied inventory, for cross-rig
// byte-comparisons.
std::string render(const core::AppliedInfo& inv) {
  std::string s;
  for (const auto& u : inv.units) {
    s += u.id + "/" + u.kernel_version + " seq=" + std::to_string(u.seq) +
         " fn=" + std::to_string(u.functions) +
         " code=" + std::to_string(u.code_bytes) +
         " spliced=" + std::to_string(u.spliced) + "\n";
  }
  s += "used=" + std::to_string(inv.memx_used) +
       " free=" + std::to_string(inv.memx_free) + "\n";
  for (const auto& [base, len] : inv.extents) {
    s += "extent " + std::to_string(base) + "+" + std::to_string(len) + "\n";
  }
  return s;
}

void expect_status(const Result<core::PatchReport>& r, core::SmmStatus want) {
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r->smm_status, want) << core::smm_status_name(r->smm_status);
}

bool exploit_fires(testbed::Testbed& t, const cve::CveCase& c) {
  auto e = t.run_syscall(c.syscall_nr, c.exploit_args);
  EXPECT_TRUE(e.is_ok()) << e.status().to_string();
  return e.is_ok() && e->oops;
}

// One merged deployment whose server knows every part's patch and whose
// kernel answers every part's syscall — the stack-of-independent-sets rig.
struct Rig {
  std::vector<cve::CveCase> parts;
  std::unique_ptr<testbed::Testbed> tb;
  testbed::Testbed& t() { return *tb; }
  core::Kshot& kshot() { return tb->kshot(); }
};

Rig boot_stack(const std::vector<std::string>& ids, u64 seed,
               int workload_threads = 0) {
  Rig r;
  auto batch = cve::combine_cases(ids);
  auto parts = cve::batch_part_cases(ids);
  EXPECT_TRUE(batch.is_ok() && parts.is_ok());
  if (!batch.is_ok() || !parts.is_ok()) return r;
  testbed::TestbedOptions o;
  o.seed = seed;
  o.workload_threads = workload_threads;
  auto tb = testbed::Testbed::boot(batch->merged, o);
  EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
  if (!tb.is_ok()) return r;
  r.tb = std::move(*tb);
  for (const auto& p : *parts) {
    r.tb->server().add_patch({p.id, p.kernel, p.pre_source, p.post_source});
    EXPECT_TRUE(
        r.tb->kernel().register_syscall(p.syscall_nr, p.entry_function)
            .is_ok());
  }
  r.parts = std::move(*parts);
  return r;
}

// ---- Supersede -----------------------------------------------------------

TEST(Lifecycle, SupersedeRetiresBaseAndInheritsProvides) {
  Rig r = boot_stack({kA, kB, kC}, 0x11FE);
  ASSERT_NE(r.tb, nullptr);
  EXPECT_TRUE(exploit_fires(r.t(), r.parts[0]));

  expect_status(r.kshot().live_patch(kA), core::SmmStatus::kOk);
  EXPECT_FALSE(exploit_fires(r.t(), r.parts[0]));
  core::LifecycleOptions dep;
  dep.depends = {kA};
  expect_status(r.kshot().live_patch(kB, dep), core::SmmStatus::kOk);
  core::LifecycleOptions sup;
  sup.supersedes = {kA};
  expect_status(r.kshot().live_patch(kC, sup), core::SmmStatus::kOk);

  // A's unit is gone and its text effects are retired: the exploit fires
  // again (C is an unrelated set, not a cumulative fix for A).
  auto inv = r.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  ASSERT_EQ(inv->units.size(), 2u);
  EXPECT_EQ(inv->units[0].id, kB);
  EXPECT_EQ(inv->units[1].id, kC);
  EXPECT_TRUE(exploit_fires(r.t(), r.parts[0]));

  // B's dependency on A is now satisfied by C's inherited provides, so C is
  // revert-blocked until B goes; then everything drains, and A's own revert
  // finds nothing (it was superseded away, not left behind).
  expect_status(r.kshot().revert_patch(kC), core::SmmStatus::kRevertBlocked);
  expect_status(r.kshot().revert_patch(kB), core::SmmStatus::kOk);
  expect_status(r.kshot().revert_patch(kC), core::SmmStatus::kOk);
  expect_status(r.kshot().revert_patch(kA),
                core::SmmStatus::kNothingToRollback);
  inv = r.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  EXPECT_TRUE(inv->units.empty());
  EXPECT_EQ(inv->memx_used, 0u);
}

TEST(Lifecycle, AppliedStateIndependentOfWorkloadThreads) {
  // The acceptance bar for supersede: applied set, mem_X, and kernel text
  // byte-identical across --jobs levels (workload threads here).
  auto run = [](int workload) {
    Rig r = boot_stack({kA, kB, kC}, 0x90B5, workload);
    EXPECT_NE(r.tb, nullptr);
    core::LifecycleOptions dep;
    dep.depends = {kA};
    core::LifecycleOptions sup;
    sup.supersedes = {kA};
    expect_status(r.kshot().live_patch(kA), core::SmmStatus::kOk);
    expect_status(r.kshot().live_patch(kB, dep), core::SmmStatus::kOk);
    expect_status(r.kshot().live_patch(kC, sup), core::SmmStatus::kOk);
    auto inv = r.kshot().query_applied();
    EXPECT_TRUE(inv.is_ok());
    return std::make_tuple(render(*inv), text_bytes(r.t()), memx_bytes(r.t()));
  };
  auto serial = run(0);
  auto threaded = run(3);
  EXPECT_EQ(std::get<0>(serial), std::get<0>(threaded));
  EXPECT_EQ(std::get<1>(serial), std::get<1>(threaded));
  EXPECT_EQ(std::get<2>(serial), std::get<2>(threaded));
}

// ---- Dependency fence ----------------------------------------------------

TEST(Lifecycle, MissingDependencyRefusedAndUnwound) {
  Rig r = boot_stack({kA, kB}, 0x5E1F);
  ASSERT_NE(r.tb, nullptr);
  Bytes text0 = text_bytes(r.t());
  Bytes memx0 = memx_bytes(r.t());

  core::LifecycleOptions dep;
  dep.depends = {"CVE-0000-0000"};
  auto rep = r.kshot().live_patch(kA, dep);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_FALSE(rep->success);
  EXPECT_EQ(rep->smm_status, core::SmmStatus::kMissingDependency);

  // The refused apply must leave no trace: no stack entry, no mem_X write,
  // no text write (the fence fires before any installation step).
  auto inv = r.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  EXPECT_TRUE(inv->units.empty());
  EXPECT_EQ(text_bytes(r.t()), text0);
  EXPECT_EQ(memx_bytes(r.t()), memx0);

  // The same rig still accepts the set once its prerequisite is real.
  expect_status(r.kshot().live_patch(kB), core::SmmStatus::kOk);
  dep.depends = {kB};
  expect_status(r.kshot().live_patch(kA, dep), core::SmmStatus::kOk);
}

TEST(Lifecycle, BlockedRevertLeavesStateUntouched) {
  Rig r = boot_stack({kA, kB}, 0xB10C);
  ASSERT_NE(r.tb, nullptr);
  Bytes text_vuln = text_bytes(r.t());

  core::LifecycleOptions dep;
  dep.depends = {kA};
  expect_status(r.kshot().live_patch(kA), core::SmmStatus::kOk);
  expect_status(r.kshot().live_patch(kB, dep), core::SmmStatus::kOk);
  Bytes text1 = text_bytes(r.t());
  Bytes memx1 = memx_bytes(r.t());
  auto inv1 = r.kshot().query_applied();
  ASSERT_TRUE(inv1.is_ok());

  expect_status(r.kshot().revert_patch(kA), core::SmmStatus::kRevertBlocked);
  EXPECT_EQ(text_bytes(r.t()), text1);
  EXPECT_EQ(memx_bytes(r.t()), memx1);
  auto inv2 = r.kshot().query_applied();
  ASSERT_TRUE(inv2.is_ok());
  EXPECT_EQ(render(*inv1), render(*inv2));

  // Draining dependents-first unblocks the revert and restores the
  // vulnerable text exactly.
  expect_status(r.kshot().revert_patch(kB), core::SmmStatus::kOk);
  expect_status(r.kshot().revert_patch(kA), core::SmmStatus::kOk);
  EXPECT_EQ(text_bytes(r.t()), text_vuln);
}

TEST(Lifecycle, DrainOrderIndependence) {
  // Three independent sets reverted in two different out-of-order
  // sequences: both drains end on the same (pre-patch) kernel text and an
  // empty inventory.
  auto run = [](const std::vector<const char*>& order) {
    Rig r = boot_stack({kA, kB, kC}, 0xD7A1);
    EXPECT_NE(r.tb, nullptr);
    Bytes text_vuln = text_bytes(r.t());
    for (const char* id : {kA, kB, kC}) {
      expect_status(r.kshot().live_patch(id), core::SmmStatus::kOk);
    }
    for (const char* id : order) {
      expect_status(r.kshot().revert_patch(id), core::SmmStatus::kOk);
    }
    auto inv = r.kshot().query_applied();
    EXPECT_TRUE(inv.is_ok());
    EXPECT_TRUE(inv->units.empty());
    EXPECT_EQ(inv->memx_used, 0u);
    EXPECT_EQ(text_bytes(r.t()), text_vuln);
    return text_bytes(r.t());
  };
  Bytes first_to_last = run({kA, kB, kC});
  Bytes middle_out = run({kB, kC, kA});
  EXPECT_EQ(first_to_last, middle_out);
}

// ---- mem_X reclamation ---------------------------------------------------

TEST(Lifecycle, RevertedSlotIsReclaimedAndReused) {
  // C (the largest set) takes the first slot; after its revert +
  // reclaim_mem_x(), the enclave's allocator first-fits the next package
  // into the freed gap instead of bumping past A.
  Rig r = boot_stack({kA, kB, kC}, 0x5107);
  ASSERT_NE(r.tb, nullptr);
  const u64 memx_base = r.t().kernel().layout().mem_x_base();

  expect_status(r.kshot().live_patch(kC), core::SmmStatus::kOk);
  auto inv = r.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  ASSERT_EQ(inv->extents.size(), 1u);
  const auto [c_base, c_len] = inv->extents[0];
  EXPECT_EQ(c_base, memx_base);

  expect_status(r.kshot().live_patch(kA), core::SmmStatus::kOk);
  inv = r.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  ASSERT_EQ(inv->extents.size(), 2u);
  const auto [a_base, a_len] = inv->extents[1];
  EXPECT_GE(a_base, c_base + c_len);

  expect_status(r.kshot().revert_patch(kC), core::SmmStatus::kOk);
  inv = r.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  ASSERT_EQ(inv->extents.size(), 1u);
  EXPECT_EQ(inv->extents[0].first, a_base);

  ASSERT_TRUE(r.kshot().reclaim_mem_x().is_ok());
  expect_status(r.kshot().live_patch(kB), core::SmmStatus::kOk);
  inv = r.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  ASSERT_EQ(inv->extents.size(), 2u);
  // B's slot landed in C's old gap, below A.
  EXPECT_EQ(inv->extents[0].first, c_base);
  EXPECT_LT(inv->extents[0].first + inv->extents[0].second, a_base + 1);
  EXPECT_EQ(inv->extents[1].first, a_base);
}

// ---- In-place splicing ---------------------------------------------------

TEST(Lifecycle, SpliceAppliesInPlaceAndRevertsExactly) {
  auto c = testbed::make_splice_sweep_case(256);
  auto tb = testbed::Testbed::boot(c, {.seed = 0x59CE});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;
  Bytes text_vuln = text_bytes(t);
  Bytes memx_vuln = memx_bytes(t);
  EXPECT_TRUE(exploit_fires(t, c));

  core::LifecycleOptions lo;
  lo.allow_splice = true;
  auto rep = t.kshot().live_patch(c.id, lo);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_TRUE(rep->success);

  // The body went over the old function: one spliced member, zero mem_X
  // occupancy, and mem_X itself untouched (no staging residue).
  auto inv = t.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  ASSERT_EQ(inv->units.size(), 1u);
  EXPECT_EQ(inv->units[0].spliced, 1u);
  EXPECT_EQ(inv->memx_used, 0u);
  EXPECT_TRUE(inv->extents.empty());
  EXPECT_EQ(memx_bytes(t), memx_vuln);
  EXPECT_FALSE(exploit_fires(t, c));
  auto benign = t.run_syscall(c.syscall_nr, c.benign_args);
  ASSERT_TRUE(benign.is_ok());
  EXPECT_FALSE(benign->oops);

  // Revert restores the saved old body byte-for-byte.
  expect_status(t.kshot().revert_patch(c.id), core::SmmStatus::kOk);
  EXPECT_EQ(text_bytes(t), text_vuln);
  EXPECT_TRUE(exploit_fires(t, c));
}

TEST(Lifecycle, GrowingFixNeverSplices) {
  // The usual fix shape (bug() -> return -ERR) always grows the body past
  // the old footprint, so allow_splice must fall back to the trampoline
  // path — applied, not spliced, mem_X occupied.
  auto c = testbed::make_size_sweep_case(256);
  auto tb = testbed::Testbed::boot(c, {.seed = 0x6F00});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;

  core::LifecycleOptions lo;
  lo.allow_splice = true;
  auto rep = t.kshot().live_patch(c.id, lo);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_TRUE(rep->success);
  auto inv = t.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  ASSERT_EQ(inv->units.size(), 1u);
  EXPECT_EQ(inv->units[0].spliced, 0u);
  EXPECT_GT(inv->memx_used, 0u);
  EXPECT_FALSE(exploit_fires(t, c));
}

// ---- Fleet inventory probe -----------------------------------------------

TEST(FleetLifecycle, InventoryProbePassesOnHealthyFleet) {
  fleet::FleetOptions o;
  o.cve_id = kA;
  o.targets = 3;
  o.base_seed = 0x1A7E;
  o.verify_applied_inventory = true;
  fleet::FleetController fc(o);
  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_EQ(rep->applied, 3u);
  EXPECT_EQ(rep->failed, 0u);
  EXPECT_EQ(rep->rolled_back, 0u);
}

TEST(FleetLifecycle, InventoryProbeCoversEveryBatchPart) {
  fleet::FleetOptions o;
  o.batch_cve_ids = {kA, kB};
  o.targets = 2;
  o.base_seed = 0xBA7C;
  o.verify_applied_inventory = true;
  fleet::FleetController fc(o);
  auto rep = fc.run_campaign();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_EQ(rep->applied, 2u);
  EXPECT_EQ(rep->failed, 0u);
}

}  // namespace
}  // namespace kshot
