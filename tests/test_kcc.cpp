// Compiler toolchain tests: lexer/parser, printer, inlining pass, code
// generation (validated by executing compiled code on the machine), and
// image linking.
#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "crypto/hmac.hpp"
#include "kcc/compiler.hpp"
#include "kcc/inline_pass.hpp"
#include "kcc/parser.hpp"
#include "kcc/printer.hpp"
#include "machine/machine.hpp"

namespace kshot::kcc {
namespace {

CompileOptions test_opts() {
  CompileOptions o;
  o.text_base = 0x10000;
  o.data_base = 0x80000;
  return o;
}

/// Compiles `src`, loads it into a machine, and calls `fn` with args.
struct ExecResult {
  machine::StepKind kind;
  u64 value = 0;
  u64 trap = 0;
};

ExecResult compile_and_run(const std::string& src, const std::string& fn,
                           std::vector<u64> args,
                           const CompileOptions& opts = test_opts()) {
  auto img = compile_source(src, opts);
  EXPECT_TRUE(img.is_ok()) << img.status().to_string();
  if (!img.is_ok()) return {machine::StepKind::kBadInstr, 0, 0};

  machine::Machine m(4 << 20, 0xA0000, 0x20000);
  EXPECT_TRUE(m.mem()
                  .write(opts.text_base, img->text,
                         machine::AccessMode::smm())
                  .is_ok());
  Bytes data = img->data_image();
  if (!data.empty()) {
    EXPECT_TRUE(m.mem()
                    .write(opts.data_base, data, machine::AccessMode::smm())
                    .is_ok());
  }
  const Symbol* sym = img->find_symbol(fn);
  EXPECT_NE(sym, nullptr) << fn << " not found";
  if (!sym) return {machine::StepKind::kBadInstr, 0, 0};

  auto& cpu = m.cpu();
  for (size_t i = 0; i < args.size(); ++i) cpu.regs[1 + i] = args[i];
  cpu.sp() = 0x200000 - 8;
  m.mem().write_u64(cpu.sp(), machine::kReturnSentinel,
                    machine::AccessMode::normal());
  cpu.rip = sym->addr;
  auto res = m.run(1'000'000);
  return {res.kind, m.cpu().regs[0], res.info};
}

// ---- Parser -----------------------------------------------------------------

TEST(Parser, MinimalFunction) {
  auto m = parse("fn f(a) { return a; }");
  ASSERT_TRUE(m.is_ok()) << m.status().to_string();
  ASSERT_EQ(m->functions.size(), 1u);
  EXPECT_EQ(m->functions[0].name, "f");
  EXPECT_EQ(m->functions[0].params.size(), 1u);
}

TEST(Parser, GlobalsAndModifiers) {
  auto m = parse(R"(
    global counter = 42;
    global neg = -7;
    inline fn helper(x) { return x + 1; }
    notrace fn raw() { return 0; }
  )");
  ASSERT_TRUE(m.is_ok()) << m.status().to_string();
  ASSERT_EQ(m->globals.size(), 2u);
  EXPECT_EQ(m->globals[0].init, 42);
  EXPECT_EQ(m->globals[1].init, -7);
  EXPECT_TRUE(m->functions[0].is_inline);
  EXPECT_TRUE(m->functions[1].notrace);
}

TEST(Parser, HexLiterals) {
  auto m = parse("fn f() { return 0xFF; }");
  ASSERT_TRUE(m.is_ok());
  EXPECT_EQ(m->functions[0].body[0]->value->num, 255);
}

TEST(Parser, SyntaxErrorsCarryLine) {
  auto m = parse("fn f() {\n  let x = ;\n}");
  ASSERT_FALSE(m.is_ok());
  EXPECT_NE(m.status().message().find("line 2"), std::string::npos);
}

TEST(Parser, RejectsUnterminatedBlock) {
  EXPECT_FALSE(parse("fn f() { return 1;").is_ok());
}

TEST(Parser, RejectsGarbageCharacter) {
  EXPECT_FALSE(parse("fn f() { return 1 @ 2; }").is_ok());
}

TEST(Printer, RoundTripsThroughParser) {
  std::string src = R"(
global g = 5;
fn f(a, b) {
  let x = (a + b) * 2;
  if (x > 10) {
    x = x - 1;
  } else {
    x = x + 1;
  }
  while (x > 0) {
    x = x - 3;
  }
  g = x;
  bug(7);
  pad(3);
  return x % 5;
}
)";
  auto m1 = parse(src);
  ASSERT_TRUE(m1.is_ok());
  std::string printed = to_source(*m1);
  auto m2 = parse(printed);
  ASSERT_TRUE(m2.is_ok()) << m2.status().to_string();
  EXPECT_EQ(printed, to_source(*m2));  // printer fixed point
}

// ---- Codegen via execution ------------------------------------------------

TEST(Codegen, ReturnsConstant) {
  auto r = compile_and_run("fn f() { return 42; }", "f", {});
  EXPECT_EQ(r.kind, machine::StepKind::kRetTop);
  EXPECT_EQ(r.value, 42u);
}

TEST(Codegen, Arithmetic) {
  auto r = compile_and_run(
      "fn f(a, b) { return (a + b) * (a - b) + a % b; }", "f", {10, 3});
  EXPECT_EQ(r.kind, machine::StepKind::kRetTop);
  EXPECT_EQ(r.value, 13u * 7u + 1u);
}

TEST(Codegen, Comparisons) {
  std::string src = "fn f(a, b) { return (a < b) + (a == b) * 10 + (a >= b) * 100; }";
  EXPECT_EQ(compile_and_run(src, "f", {1, 2}).value, 1u);
  EXPECT_EQ(compile_and_run(src, "f", {2, 2}).value, 110u);
  EXPECT_EQ(compile_and_run(src, "f", {3, 2}).value, 100u);
}

TEST(Codegen, IfElse) {
  std::string src = R"(
fn f(a) {
  if (a > 10) {
    return 1;
  } else {
    return 2;
  }
}
)";
  EXPECT_EQ(compile_and_run(src, "f", {11}).value, 1u);
  EXPECT_EQ(compile_and_run(src, "f", {10}).value, 2u);
}

TEST(Codegen, WhileLoopSum) {
  std::string src = R"(
fn f(n) {
  let i = 0;
  let acc = 0;
  while (i < n) {
    i = i + 1;
    acc = acc + i;
  }
  return acc;
}
)";
  EXPECT_EQ(compile_and_run(src, "f", {10}).value, 55u);
  EXPECT_EQ(compile_and_run(src, "f", {0}).value, 0u);
}

TEST(Codegen, FunctionCalls) {
  std::string src = R"(
fn sq(x) { return x * x; }
fn f(a, b) { return sq(a) + sq(b); }
)";
  EXPECT_EQ(compile_and_run(src, "f", {3, 4}).value, 25u);
}

TEST(Codegen, RecursionViaStackFrames) {
  std::string src = R"(
fn fact(n) {
  if (n < 2) {
    return 1;
  }
  return n * fact(n - 1);
}
)";
  EXPECT_EQ(compile_and_run(src, "fact", {10}).value, 3628800u);
}

TEST(Codegen, GlobalsReadWrite) {
  std::string src = R"(
global counter = 100;
fn f(a) {
  counter = counter + a;
  return counter;
}
)";
  EXPECT_EQ(compile_and_run(src, "f", {5}).value, 105u);
}

TEST(Codegen, BugStatementTraps) {
  auto r = compile_and_run("fn f(a) { if (a > 1) { bug(9); } return 0; }",
                           "f", {5});
  EXPECT_EQ(r.kind, machine::StepKind::kOops);
  EXPECT_EQ(r.trap, 9u);
}

TEST(Codegen, FallThroughReturnsZero) {
  auto r = compile_and_run("fn f(a) { let x = a + 1; }", "f", {7});
  EXPECT_EQ(r.kind, machine::StepKind::kRetTop);
  EXPECT_EQ(r.value, 0u);
}

TEST(Codegen, CallerSeesCalleeClobberSafe) {
  // Locals survive calls because they live in stack frames.
  std::string src = R"(
fn noisy(x) {
  let a = x * 2;
  let b = a + 3;
  return b;
}
fn f(p, q) {
  let keep = p * 100;
  let r = noisy(q);
  return keep + r;
}
)";
  EXPECT_EQ(compile_and_run(src, "f", {7, 5}).value, 700u + 13u);
}

TEST(Codegen, UnknownVariableFails) {
  auto img = compile_source("fn f() { return nosuch; }", test_opts());
  EXPECT_FALSE(img.is_ok());
  EXPECT_EQ(img.status().code(), Errc::kNotFound);
}

TEST(Codegen, UnknownFunctionFails) {
  auto img = compile_source("fn f() { return g(1); }", test_opts());
  EXPECT_FALSE(img.is_ok());
}

TEST(Codegen, TooManyArgsFails) {
  auto img = compile_source(
      "fn g(a,b,c,d,e,x) { return 0; } fn f() { return g(1,2,3,4,5,6); }",
      test_opts());
  EXPECT_FALSE(img.is_ok());
}

TEST(Codegen, PadEmitsNops) {
  CompileOptions o = test_opts();
  o.enable_ftrace = false;
  auto with = compile_source("fn f() { pad(40); return 1; }", o);
  auto without = compile_source("fn f() { return 1; }", o);
  ASSERT_TRUE(with.is_ok() && without.is_ok());
  EXPECT_EQ(with->find_symbol("f")->size,
            without->find_symbol("f")->size + 40);
}

// ---- ftrace pad --------------------------------------------------------------

TEST(Ftrace, TracedFunctionStartsWithNop5) {
  auto img = compile_source("fn f() { return 1; }", test_opts());
  ASSERT_TRUE(img.is_ok());
  auto body = img->function_bytes("f");
  ASSERT_TRUE(body.is_ok());
  EXPECT_EQ((*body)[0], 0x0F);
  EXPECT_EQ((*body)[1], 0x1F);
  EXPECT_TRUE(img->find_symbol("f")->traced);
}

TEST(Ftrace, NotraceSkipsPad) {
  auto img = compile_source("notrace fn f() { return 1; }", test_opts());
  ASSERT_TRUE(img.is_ok());
  auto body = img->function_bytes("f");
  EXPECT_NE((*body)[0], 0x0F);
  EXPECT_FALSE(img->find_symbol("f")->traced);
}

TEST(Ftrace, FirstRealInstructionIsAtLeastFiveBytes) {
  // Live-patch consistency invariant: no instruction boundary inside the
  // 5-byte trampoline window after the pad.
  auto img = compile_source("fn f(a) { return a; }", test_opts());
  ASSERT_TRUE(img.is_ok());
  auto body = img->function_bytes("f");
  auto d = isa::decode(ByteSpan(*body).subspan(5));
  ASSERT_TRUE(d.is_ok());
  EXPECT_GE(d->len, 5u);
}

// ---- Inlining ------------------------------------------------------------------

TEST(Inline, InlineFunctionDisappearsFromImage) {
  std::string src = R"(
inline fn helper(x) { return x * 2; }
fn f(a) { return helper(a) + 1; }
)";
  auto img = compile_source(src, test_opts());
  ASSERT_TRUE(img.is_ok());
  EXPECT_EQ(img->find_symbol("helper"), nullptr);
  EXPECT_NE(img->find_symbol("f"), nullptr);
  EXPECT_EQ(compile_and_run(src, "f", {21}).value, 43u);
}

TEST(Inline, DisabledInliningKeepsSymbol) {
  std::string src = R"(
inline fn helper(x) { return x * 2; }
fn f(a) { return helper(a) + 1; }
)";
  CompileOptions o = test_opts();
  o.enable_inlining = false;
  auto img = compile_source(src, o);
  ASSERT_TRUE(img.is_ok());
  EXPECT_NE(img->find_symbol("helper"), nullptr);
}

TEST(Inline, TransitiveInlining) {
  std::string src = R"(
inline fn a(x) { return x + 1; }
inline fn b(x) { return a(x) * 2; }
fn f(v) { return b(v); }
)";
  EXPECT_EQ(compile_and_run(src, "f", {5}).value, 12u);
  auto img = compile_source(src, test_opts());
  ASSERT_TRUE(img.is_ok());
  EXPECT_EQ(img->symbols.size(), 1u);
}

TEST(Inline, BodyWithLetsAndIf) {
  std::string src = R"(
inline fn clamp(v) {
  let r = v;
  if (v > 100) {
    r = 100;
  }
  return r;
}
fn f(a) { return clamp(a) + clamp(a * 2); }
)";
  EXPECT_EQ(compile_and_run(src, "f", {30}).value, 90u);
  EXPECT_EQ(compile_and_run(src, "f", {80}).value, 180u);
}

TEST(Inline, NestedCallArguments) {
  std::string src = R"(
inline fn inc(x) { return x + 1; }
fn f(a) { return inc(inc(inc(a))); }
)";
  EXPECT_EQ(compile_and_run(src, "f", {0}).value, 3u);
}

TEST(Inline, BugInsideInlineePropagates) {
  std::string src = R"(
inline fn check(v) {
  if (v > 10) {
    bug(5);
  }
  return v;
}
fn f(a) { return check(a); }
)";
  auto r = compile_and_run(src, "f", {11});
  EXPECT_EQ(r.kind, machine::StepKind::kOops);
  EXPECT_EQ(r.trap, 5u);
  EXPECT_EQ(compile_and_run(src, "f", {3}).value, 3u);
}

TEST(Inline, WhileInsideInlineRejected) {
  std::string src = R"(
inline fn bad(x) {
  while (x > 0) {
    x = x - 1;
  }
  return x;
}
fn f(a) { return bad(a); }
)";
  auto img = compile_source(src, test_opts());
  EXPECT_FALSE(img.is_ok());
  EXPECT_EQ(img.status().code(), Errc::kUnsupported);
}

TEST(Inline, InlineCallInLoopConditionRejected) {
  std::string src = R"(
inline fn limit() { return 5; }
fn f(a) {
  let i = 0;
  while (i < limit()) {
    i = i + 1;
  }
  return i;
}
)";
  EXPECT_FALSE(compile_source(src, test_opts()).is_ok());
}

TEST(Inline, InlineCallInLoopBodyAllowed) {
  std::string src = R"(
inline fn step(x) { return x + 2; }
fn f(n) {
  let i = 0;
  while (i < n) {
    i = step(i);
  }
  return i;
}
)";
  EXPECT_EQ(compile_and_run(src, "f", {10}).value, 10u);
}

// ---- Image / linking --------------------------------------------------------

TEST(Image, SymbolsHaveDistinctAlignedAddresses) {
  auto img = compile_source(
      "fn a() { return 1; } fn b() { return 2; } fn c() { return 3; }",
      test_opts());
  ASSERT_TRUE(img.is_ok());
  ASSERT_EQ(img->symbols.size(), 3u);
  for (size_t i = 1; i < img->symbols.size(); ++i) {
    EXPECT_GT(img->symbols[i].addr,
              img->symbols[i - 1].addr + img->symbols[i - 1].size - 1);
    EXPECT_EQ(img->symbols[i].addr % 16, 0u);
  }
}

TEST(Image, SymbolAtFindsContainingFunction) {
  auto img = compile_source("fn a() { return 1; } fn b() { return 2; }",
                            test_opts());
  ASSERT_TRUE(img.is_ok());
  const Symbol* a = img->find_symbol("a");
  const Symbol* b = img->find_symbol("b");
  EXPECT_EQ(img->symbol_at(a->addr + 3)->name, "a");
  EXPECT_EQ(img->symbol_at(b->addr)->name, "b");
  // Alignment padding between functions belongs to no symbol.
  if (a->addr + a->size < b->addr) {
    EXPECT_EQ(img->symbol_at(a->addr + a->size), nullptr);
  }
}

TEST(Image, MeasurementDetectsAnyChange) {
  auto img1 = compile_source("fn f() { return 1; }", test_opts());
  auto img2 = compile_source("fn f() { return 2; }", test_opts());
  ASSERT_TRUE(img1.is_ok() && img2.is_ok());
  EXPECT_FALSE(
      crypto::digest_equal(img1->measurement(), img2->measurement()));
}

TEST(Image, GlobalsLaidOutInOrder) {
  auto img = compile_source(
      "global a = 1; global b = 2; fn f() { return a + b; }", test_opts());
  ASSERT_TRUE(img.is_ok());
  EXPECT_EQ(img->find_global("a")->addr, test_opts().data_base);
  EXPECT_EQ(img->find_global("b")->addr, test_opts().data_base + 8);
  Bytes data = img->data_image();
  ASSERT_EQ(data.size(), 16u);
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[8], 2);
}

TEST(Image, FunctionBytesMatchesSymbolSize) {
  auto img = compile_source("fn f(a) { return a * 3; }", test_opts());
  ASSERT_TRUE(img.is_ok());
  auto body = img->function_bytes("f");
  ASSERT_TRUE(body.is_ok());
  EXPECT_EQ(body->size(), img->find_symbol("f")->size);
}

TEST(Image, MissingSymbolLookupFails) {
  auto img = compile_source("fn f() { return 1; }", test_opts());
  ASSERT_TRUE(img.is_ok());
  EXPECT_FALSE(img->function_bytes("nope").is_ok());
  EXPECT_EQ(img->find_global("nope"), nullptr);
}

}  // namespace
}  // namespace kshot::kcc
