// Streaming (chunked) staging tests: packages larger than mem_W cross the
// reserved region in pieces, each chunk authenticated and order-enforced,
// with the patch applying atomically after the final chunk.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace kshot::core {
namespace {

using testbed::Testbed;

TEST(Chunked, SmallPatchManyChunks) {
  // Force a small patch through tiny chunks to exercise the protocol.
  const auto& c = cve::find_case("CVE-2016-7914");  // ~15KB patch
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;

  u64 smis_before = t.machine().smi_count();
  auto rep = t.kshot().live_patch_chunked(c.id, 2048);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success)
      << "status " << static_cast<u64>(rep->smm_status);
  // Session SMI + one SMI per chunk (>= 8 chunks for ~15KB at 2KB).
  EXPECT_GT(t.machine().smi_count() - smis_before, 8u);

  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
  auto benign = t.run_benign();
  ASSERT_TRUE(benign.is_ok());
  EXPECT_FALSE(benign->oops);
}

TEST(Chunked, PatchLargerThanMemW) {
  // The headline case: a patch whose sealed package exceeds the whole mem_W
  // staging area, which the single-shot path must reject and the chunked
  // path must deliver.
  size_t target = 8 << 20;  // 8 MB patch
  cve::CveCase c = testbed::make_size_sweep_case(target);
  testbed::TestbedOptions opts;
  // Text segment big enough to hold the function, but a staging area
  // deliberately smaller than the package.
  opts.layout = kernel::MemoryLayout::for_size_sweep();
  opts.layout.mem_w_size = (4 << 20) - opts.layout.mem_rw_size;
  auto tb = Testbed::boot(c, opts);
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  Testbed& t = **tb;

  // Single-shot refuses: the package cannot fit mem_W.
  auto single = t.kshot().live_patch(c.id);
  EXPECT_FALSE(single.is_ok() && single->success);

  // Chunked succeeds.
  auto rep = t.kshot().live_patch_chunked(c.id, 1 << 20);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success)
      << "status " << static_cast<u64>(rep->smm_status);
  EXPECT_GT(rep->stats.code_bytes, target / 2);

  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
}

TEST(Chunked, RollbackWorksAfterChunkedApply) {
  const auto& c = cve::find_case("CVE-2016-7914");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;
  ASSERT_TRUE(t.kshot().live_patch_chunked(c.id, 4096)->success);
  ASSERT_TRUE(t.kshot().rollback()->success);
  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops);
}

TEST(Chunked, ChunkWithoutSessionRejected) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;
  Mailbox mbox(t.machine().mem(), t.kernel().layout().mem_rw_base(),
               machine::AccessMode::normal());
  ASSERT_TRUE(mbox.write_staged_size(1024).is_ok());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kStageChunk).is_ok());
  t.machine().trigger_smi();
  EXPECT_EQ(*mbox.read_status(), SmmStatus::kNoSession);
}

TEST(Chunked, ReplayedChunkRejected) {
  // Re-staging chunk 0's ciphertext when chunk 1 is expected must fail the
  // nonce/order check and abort the stream.
  const auto& c = cve::find_case("CVE-2016-7914");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;
  const auto& lay = t.kernel().layout();
  Mailbox mbox(t.machine().mem(), lay.mem_rw_base(),
               machine::AccessMode::normal());
  auto& enclave = t.kshot().enclave();

  // Manual pipeline up to chunk staging.
  auto req = enclave.begin_fetch(c.id, netsim::PatchRequest::Op::kFetchPatch);
  ASSERT_TRUE(req.is_ok());
  auto resp = t.server().handle_request(*req);
  ASSERT_TRUE(resp.is_ok());
  ASSERT_TRUE(enclave.finish_fetch(*resp).is_ok());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kBeginSession).is_ok());
  t.machine().trigger_smi();
  auto smm_pub = mbox.read_smm_pub();
  ASSERT_TRUE(enclave.preprocess().is_ok());
  auto setup = enclave.begin_seal_chunked(*smm_pub, 2048);
  ASSERT_TRUE(setup.is_ok());
  crypto::X25519Key pub;
  std::copy(setup->begin(), setup->begin() + 32, pub.begin());
  ASSERT_TRUE(mbox.write_enclave_pub(pub).is_ok());

  auto chunk0 = enclave.get_chunk(0);
  ASSERT_TRUE(chunk0.is_ok());
  auto stage = [&](const Bytes& chunk) {
    EXPECT_TRUE(t.machine()
                    .mem()
                    .write(lay.mem_w_base(), chunk,
                           machine::AccessMode::normal())
                    .is_ok());
    EXPECT_TRUE(mbox.write_staged_size(chunk.size()).is_ok());
    EXPECT_TRUE(mbox.write_command(SmmCommand::kStageChunk).is_ok());
    t.machine().trigger_smi();
    return *mbox.read_status();
  };

  EXPECT_EQ(stage(*chunk0), SmmStatus::kChunkAccepted);
  // Attack: replay chunk 0 instead of sending chunk 1.
  EXPECT_EQ(stage(*chunk0), SmmStatus::kChunkOutOfOrder);
  // The stream was aborted: even the right chunk is now rejected (the
  // session key was consumed; a fresh session is required).
  auto chunk1 = enclave.get_chunk(1);
  ASSERT_TRUE(chunk1.is_ok());
  EXPECT_EQ(stage(*chunk1), SmmStatus::kNoSession);
  EXPECT_EQ(t.kshot().handler().patches_applied(), 0u);
}

TEST(Chunked, TamperedChunkAbortsStream) {
  const auto& c = cve::find_case("CVE-2016-7914");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  Testbed& t = **tb;
  const auto& lay = t.kernel().layout();
  Mailbox mbox(t.machine().mem(), lay.mem_rw_base(),
               machine::AccessMode::normal());
  auto& enclave = t.kshot().enclave();

  auto req = enclave.begin_fetch(c.id, netsim::PatchRequest::Op::kFetchPatch);
  auto resp = t.server().handle_request(*req);
  ASSERT_TRUE(enclave.finish_fetch(*resp).is_ok());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kBeginSession).is_ok());
  t.machine().trigger_smi();
  auto smm_pub = mbox.read_smm_pub();
  ASSERT_TRUE(enclave.preprocess().is_ok());
  auto setup = enclave.begin_seal_chunked(*smm_pub, 2048);
  crypto::X25519Key pub;
  std::copy(setup->begin(), setup->begin() + 32, pub.begin());
  ASSERT_TRUE(mbox.write_enclave_pub(pub).is_ok());

  auto chunk0 = enclave.get_chunk(0);
  Bytes tampered = *chunk0;
  tampered[tampered.size() / 2] ^= 0x01;
  ASSERT_TRUE(t.machine()
                  .mem()
                  .write(lay.mem_w_base(), tampered,
                         machine::AccessMode::normal())
                  .is_ok());
  ASSERT_TRUE(mbox.write_staged_size(tampered.size()).is_ok());
  ASSERT_TRUE(mbox.write_command(SmmCommand::kStageChunk).is_ok());
  t.machine().trigger_smi();
  EXPECT_EQ(*mbox.read_status(), SmmStatus::kMacFailure);
  EXPECT_EQ(t.kshot().handler().patches_applied(), 0u);
}

TEST(Chunked, BadChunkSizeRejected) {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  EXPECT_FALSE((*tb)->kshot().live_patch_chunked(c.id, 16).is_ok());
  EXPECT_FALSE(
      (*tb)->kshot()
          .live_patch_chunked(c.id,
                              static_cast<u32>(
                                  (*tb)->kernel().layout().mem_w_size))
          .is_ok());
}

}  // namespace
}  // namespace kshot::core
