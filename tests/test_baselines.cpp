// Baseline patcher tests (kpatch/KUP/KARMA analogues) — functional behaviour
// on a clean kernel plus the capability limits Table V records.
#include <gtest/gtest.h>

#include "baselines/karma_sim.hpp"
#include "baselines/kpatch_sim.hpp"
#include "baselines/kup_sim.hpp"
#include "testbed/testbed.hpp"

namespace kshot::baselines {
namespace {

using testbed::Testbed;

std::unique_ptr<Testbed> boot(const char* id,
                              testbed::TestbedOptions opts = {}) {
  auto tb = Testbed::boot(cve::find_case(id), opts);
  EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
  return std::move(*tb);
}

// ---- kpatch ---------------------------------------------------------------

TEST(Kpatch, PatchesCleanKernel) {
  auto t = boot("CVE-2014-0196");
  const auto& c = t->cve_case();
  KpatchSim kpatch(t->kernel(), t->scheduler());
  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  auto rep = kpatch.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  ASSERT_TRUE(rep->success) << rep->detail;
  EXPECT_GT(rep->downtime_cycles, 0u);
  EXPECT_GT(rep->memory_overhead_bytes, 0u);
  // kpatch's TCB includes the whole kernel text.
  EXPECT_GT(rep->tcb_bytes, t->kernel().image().text.size());

  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
  auto benign = t->run_benign();
  ASSERT_TRUE(benign.is_ok());
  EXPECT_FALSE(benign->oops);
}

TEST(Kpatch, RevertRestoresOriginal) {
  auto t = boot("CVE-2014-0196");
  const auto& c = t->cve_case();
  KpatchSim kpatch(t->kernel(), t->scheduler());
  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  ASSERT_TRUE(kpatch.apply(*set)->success);
  ASSERT_TRUE(kpatch.revert_last().is_ok());
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops);
  EXPECT_FALSE(kpatch.revert_last().is_ok());
}

TEST(Kpatch, ActivenessCheckBlocksWhenThreadInside) {
  // Park a workload thread inside the target function, then try to patch.
  auto t = boot("CVE-2014-0196", {.workload_threads = 0});
  const auto& c = t->cve_case();
  auto tid = t->scheduler().spawn({{c.syscall_nr, c.benign_args}}, true);
  ASSERT_TRUE(tid.is_ok());
  // Step with small quanta until the thread's saved rip is inside the entry
  // function itself (not one of its callees).
  const kcc::Symbol* sym = t->kernel().image().find_symbol(c.entry_function);
  ASSERT_NE(sym, nullptr);
  bool inside = false;
  for (int i = 0; i < 500 && !inside; ++i) {
    t->scheduler().run(1, 7);
    const auto& th = t->scheduler().thread(*tid);
    u64 rip = th.saved_ctx().rip;
    inside = th.mid_syscall() && rip >= sym->addr &&
             rip < sym->addr + sym->size;
  }
  ASSERT_TRUE(inside) << "could not park a thread inside " << sym->name;

  KpatchSim kpatch(t->kernel(), t->scheduler());
  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  auto rep = kpatch.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  // The entry function is on the thread's stack: kpatch must refuse.
  EXPECT_FALSE(rep->success);
  EXPECT_NE(rep->detail.find("activeness"), std::string::npos);
}

TEST(Kpatch, MultiFunctionPatchWithIntraSetCalls) {
  auto t = boot("CVE-2018-10124");
  const auto& c = t->cve_case();
  KpatchSim kpatch(t->kernel(), t->scheduler());
  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  ASSERT_TRUE(kpatch.apply(*set)->success);
  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
}

// ---- KUP ---------------------------------------------------------------------

TEST(Kup, WholeKernelReplacement) {
  auto t = boot("CVE-2016-5195", {.workload_threads = 2});
  const auto& c = t->cve_case();
  t->scheduler().run(50);

  KupSim kup(t->kernel(), t->scheduler());
  auto post = t->server().build_post_image(c.id, t->compile_options());
  ASSERT_TRUE(post.is_ok());
  auto rep = kup.apply(c.id, *post);
  ASSERT_TRUE(rep.is_ok());
  ASSERT_TRUE(rep->success) << rep->detail;

  // Memory overhead must dominate everything else: checkpoints + image.
  EXPECT_GT(rep->memory_overhead_bytes, 2 * t->kernel().layout().stack_size);
  EXPECT_GT(rep->downtime_cycles, 0u);

  auto exploit = t->run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_FALSE(exploit->oops);
  // Threads keep running after restore.
  u64 before = t->scheduler().stats().syscalls_completed;
  t->scheduler().run(200);
  EXPECT_GT(t->scheduler().stats().syscalls_completed, before);
}

TEST(Kup, HandlesLayoutChangingPatchKshotCannot) {
  // KUP's trump card (Table V "Data structure" handling): a patch that
  // *renumbers* shared globals is rejected by KShot's patch builder but
  // fine for whole-kernel replacement.
  auto t = boot("CVE-2014-0196");
  std::string pre = cve::base_kernel_source();
  std::string post = "global reordered = 1;\n" + cve::base_kernel_source();
  netsim::PatchServer& server = t->server();
  server.add_patch({"LAYOUT-CHANGE", "sim-3.14", pre, post});

  // KShot path fails...
  kernel::OsInfo info = t->kernel().os_info();
  auto opts = t->compile_options();
  auto pre_img = kcc::compile_source(pre, opts);
  ASSERT_TRUE(pre_img.is_ok());
  info.measurement = pre_img->measurement();
  auto set = server.build_patchset("LAYOUT-CHANGE", info);
  EXPECT_EQ(set.status().code(), Errc::kUnsupported);
}

// ---- KARMA -------------------------------------------------------------------

TEST(Karma, InPlacePatchWhenItFits) {
  // Craft a same-size patch: identical filler, only the guard differs.
  auto t = boot("CVE-2015-8964");  // small Type 2 patch
  const auto& c = t->cve_case();
  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());

  KarmaSim karma(t->kernel(), t->scheduler());
  auto rep = karma.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  if (rep->success) {
    EXPECT_EQ(rep->memory_overhead_bytes, 0u);
    auto exploit = t->run_exploit();
    ASSERT_TRUE(exploit.is_ok());
    EXPECT_FALSE(exploit->oops);
  } else {
    // Acceptable alternative: the replacement didn't fit — KARMA's limit.
    EXPECT_NE(rep->detail.find("larger"), std::string::npos);
  }
}

TEST(Karma, RejectsGrowingPatch) {
  // The fix adds an early-return guard, so the post body is bigger than the
  // original function for most Type 1 cases.
  auto t = boot("CVE-2014-0196");
  const auto& c = t->cve_case();
  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  KarmaSim karma(t->kernel(), t->scheduler());
  auto rep = karma.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  EXPECT_FALSE(rep->success);
}

TEST(Karma, RejectsDataStructureChanges) {
  auto t = boot("CVE-2014-3690");  // Type 3
  const auto& c = t->cve_case();
  auto set = t->server().build_patchset(c.id, t->kernel().os_info());
  ASSERT_TRUE(set.is_ok());
  KarmaSim karma(t->kernel(), t->scheduler());
  auto rep = karma.apply(*set);
  ASSERT_TRUE(rep.is_ok());
  EXPECT_FALSE(rep->success);
  EXPECT_NE(rep->detail.find("data"), std::string::npos);
}

// ---- Comparative properties (Table V seeds) ------------------------------------

TEST(Comparison, KshotTcbIndependentOfKernelSize) {
  // The defining TCB property (Table V): in-kernel patchers trust the whole
  // kernel, so their TCB grows with kernel text; KShot's TCB (SMM handler +
  // enclave) does not.
  auto small_tb = boot("CVE-2014-4157");   // tiny module
  auto big_tb = boot("CVE-2016-7914");     // 330-LoC module
  ASSERT_GT(big_tb->kernel().image().text.size(),
            small_tb->kernel().image().text.size());

  size_t kshot_small = small_tb->kshot().tcb_bytes();
  size_t kshot_big = big_tb->kshot().tcb_bytes();
  EXPECT_EQ(kshot_small, kshot_big);

  KpatchSim kp_small(small_tb->kernel(), small_tb->scheduler());
  KpatchSim kp_big(big_tb->kernel(), big_tb->scheduler());
  auto set_small = small_tb->server().build_patchset(
      small_tb->cve_case().id, small_tb->kernel().os_info());
  auto set_big = big_tb->server().build_patchset(
      big_tb->cve_case().id, big_tb->kernel().os_info());
  ASSERT_TRUE(set_small.is_ok() && set_big.is_ok());
  auto rep_small = kp_small.apply(*set_small);
  auto rep_big = kp_big.apply(*set_big);
  ASSERT_TRUE(rep_small.is_ok() && rep_big.is_ok());
  EXPECT_GT(rep_big->tcb_bytes, rep_small->tcb_bytes);
}

TEST(Comparison, KupMemoryOverheadDwarfsKshot) {
  auto t = boot("CVE-2014-0196", {.workload_threads = 8});
  const auto& c = t->cve_case();
  t->scheduler().run(100);

  KupSim kup(t->kernel(), t->scheduler());
  auto post = t->server().build_post_image(c.id, t->compile_options());
  ASSERT_TRUE(post.is_ok());
  auto rep = kup.apply(c.id, *post);
  ASSERT_TRUE(rep.is_ok() && rep->success);

  // KShot's extra memory is the fixed 18 MB reservation; KUP's checkpoint
  // grows with workload. With 8 threads the checkpoint already exceeds the
  // patch-size-proportional memory KShot actually touches.
  size_t kshot_touched = 64 * 1024;  // staging + patch text for this CVE
  EXPECT_GT(rep->memory_overhead_bytes, kshot_touched);
}

}  // namespace
}  // namespace kshot::baselines
