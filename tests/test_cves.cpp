// RQ1 as a parameterized test: every Table I CVE case must (a) expose a
// working exploit on the vulnerable kernel, (b) live-patch successfully
// through the full KShot pipeline, (c) no longer be exploitable, and (d)
// behave identically to a natively-built post-patch kernel on benign input.
#include <gtest/gtest.h>

#include "patchtool/callgraph.hpp"
#include "kcc/parser.hpp"
#include "testbed/testbed.hpp"

namespace kshot::cve {
namespace {

class CveSuite : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> all_ids() {
  std::vector<std::string> ids;
  for (const auto& c : all_cases()) ids.push_back(c.id);
  return ids;
}

TEST_P(CveSuite, SuiteMetadataMatchesTable1) {
  const CveCase& c = find_case(GetParam());
  EXPECT_FALSE(c.functions.empty());
  EXPECT_GT(c.patch_loc, 0);
  EXPECT_TRUE(c.kernel == "sim-3.14" || c.kernel == "sim-4.4");
  EXPECT_TRUE(c.has_type(1) || c.has_type(2) || c.has_type(3));
}

TEST_P(CveSuite, SourcesCompile) {
  const CveCase& c = find_case(GetParam());
  kernel::MemoryLayout lay;
  auto opts = testbed::options_for_layout(lay, c.kernel);
  auto pre = kcc::compile_source(c.pre_source, opts);
  ASSERT_TRUE(pre.is_ok()) << c.id << ": " << pre.status().to_string();
  auto post = kcc::compile_source(c.post_source, opts);
  ASSERT_TRUE(post.is_ok()) << c.id << ": " << post.status().to_string();
  EXPECT_FALSE(
      crypto::digest_equal(pre->measurement(), post->measurement()));
}

TEST_P(CveSuite, ExploitFiresPrePatch) {
  const CveCase& c = find_case(GetParam());
  auto tb = testbed::Testbed::boot(c, {.seed = 0x999});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  // The shared probe contract (cve::probe_case, also the fleet health-check
  // path): pre-patch, the exploit must trap with the case's code and the
  // benign syscall must succeed.
  auto rep = probe_case(c, testbed::prober(**tb), /*expect_fixed=*/false);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_TRUE(rep->detail.empty()) << rep->detail;
  EXPECT_TRUE(rep->exploit_trapped) << c.id << " exploit did not fire";
  EXPECT_TRUE(rep->benign_ok);
}

TEST_P(CveSuite, PatchSetHasExpectedShape) {
  const CveCase& c = find_case(GetParam());
  auto tb = testbed::Testbed::boot(c, {});
  ASSERT_TRUE(tb.is_ok());
  auto set = (*tb)->server().build_patchset(c.id, (*tb)->kernel().os_info());
  ASSERT_TRUE(set.is_ok()) << c.id << ": " << set.status().to_string();
  EXPECT_FALSE(set->patches.empty());

  bool any_type2 = false, any_type3 = false, any_var_edit = false;
  for (const auto& p : set->patches) {
    if (p.type == patchtool::PatchType::kType2) any_type2 = true;
    if (p.type == patchtool::PatchType::kType3) any_type3 = true;
    if (!p.var_edits.empty()) any_var_edit = true;
    EXPECT_FALSE(p.code.empty());
  }
  if (c.has_type(3)) {
    EXPECT_TRUE(any_type3) << c.id;
    EXPECT_TRUE(any_var_edit) << c.id;
  } else {
    EXPECT_FALSE(any_var_edit) << c.id;
  }
  if (c.has_type(2) && !c.has_type(3)) {
    EXPECT_TRUE(any_type2) << c.id << " should show inlining implication";
  }
}

TEST_P(CveSuite, InliningWorklistAgreesWithBinaryDiff) {
  const CveCase& c = find_case(GetParam());
  if (!c.has_type(2)) GTEST_SKIP() << "no inlining in this case";
  kernel::MemoryLayout lay;
  auto opts = testbed::options_for_layout(lay, c.kernel);
  auto pre_m = kcc::parse(c.pre_source);
  auto post_m = kcc::parse(c.post_source);
  ASSERT_TRUE(pre_m.is_ok() && post_m.is_ok());
  auto post_img = kcc::compile_source(c.post_source, opts);
  ASSERT_TRUE(post_img.is_ok());

  auto changed = patchtool::source_changed_functions(*pre_m, *post_m);
  auto implicated =
      patchtool::implicated_functions(*post_m, *post_img, changed);
  // Every function the worklist implicates must exist in the binary, and at
  // least one inline function must have been expanded away.
  for (const auto& fn : implicated) {
    EXPECT_NE(post_img->find_symbol(fn), nullptr) << fn;
  }
  EXPECT_FALSE(
      patchtool::inlined_functions(*post_m, *post_img).empty());
}

TEST_P(CveSuite, KshotLivePatchEndToEnd) {
  const CveCase& c = find_case(GetParam());
  auto tb = testbed::Testbed::boot(c, {.seed = 0xABC});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;
  auto probe = testbed::prober(t);

  auto before = probe_case(c, probe, /*expect_fixed=*/false);
  ASSERT_TRUE(before.is_ok()) << before.status().to_string();
  EXPECT_TRUE(before->detail.empty()) << before->detail;
  ASSERT_TRUE(before->benign_ok);

  auto report = t.kshot().live_patch(c.id);
  ASSERT_TRUE(report.is_ok()) << c.id << ": " << report.status().to_string();
  ASSERT_TRUE(report->success)
      << c.id << " smm status " << static_cast<u64>(report->smm_status);

  auto after = probe_case(c, probe, /*expect_fixed=*/true);
  ASSERT_TRUE(after.is_ok()) << after.status().to_string();
  EXPECT_FALSE(after->exploit_trapped)
      << c.id << " still exploitable after patch";
  ASSERT_TRUE(after->benign_ok);
  EXPECT_EQ(after->benign_value, before->benign_value)
      << c.id << " patch changed benign behaviour";
}

TEST_P(CveSuite, PatchedBehaviourMatchesNativePostKernel) {
  const CveCase& c = find_case(GetParam());

  // Live-patched pre kernel.
  auto tb = testbed::Testbed::boot(c, {.seed = 0x111});
  ASSERT_TRUE(tb.is_ok());
  ASSERT_TRUE((*tb)->kshot().live_patch(c.id).is_ok());

  // Natively built post kernel: swap sources so the "pre" the testbed boots
  // is the fixed code.
  CveCase native = c;
  native.pre_source = c.post_source;
  auto tb2 = testbed::Testbed::boot(native, {.seed = 0x222,
                                             .install_kshot = false});
  ASSERT_TRUE(tb2.is_ok()) << tb2.status().to_string();

  for (auto args : {c.exploit_args, c.benign_args}) {
    auto patched = (*tb)->run_syscall(c.syscall_nr, args);
    auto nativer = (*tb2)->run_syscall(c.syscall_nr, args);
    ASSERT_TRUE(patched.is_ok() && nativer.is_ok());
    EXPECT_EQ(patched->oops, nativer->oops);
    EXPECT_EQ(patched->value, nativer->value)
        << c.id << " diverges from native post kernel";
  }
}

TEST_P(CveSuite, RollbackRestoresExploit) {
  const CveCase& c = find_case(GetParam());
  auto tb = testbed::Testbed::boot(c, {.seed = 0x333});
  ASSERT_TRUE(tb.is_ok());
  testbed::Testbed& t = **tb;
  ASSERT_TRUE(t.kshot().live_patch(c.id).is_ok());
  ASSERT_TRUE(t.kshot().rollback().is_ok());
  auto exploit = t.run_exploit();
  ASSERT_TRUE(exploit.is_ok());
  EXPECT_TRUE(exploit->oops) << c.id << " rollback incomplete";
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CveSuite, ::testing::ValuesIn(all_ids()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(CveSuiteGlobal, ThirtyOneCasesPresent) {
  EXPECT_EQ(all_cases().size(), 31u);  // Table I's 30 + CVE-2014-4608
}

TEST(CveSuiteGlobal, FigureCasesExist) {
  auto ids = figure_case_ids();
  EXPECT_EQ(ids.size(), 6u);
  for (const auto& id : ids) {
    EXPECT_NO_FATAL_FAILURE(find_case(id));
  }
}

TEST(CveSuiteGlobal, UniqueTrapCodesAndSyscalls) {
  std::set<u8> traps;
  std::set<int> nrs;
  for (const auto& c : all_cases()) {
    EXPECT_TRUE(traps.insert(c.trap_code).second) << c.id;
    EXPECT_TRUE(nrs.insert(c.syscall_nr).second) << c.id;
  }
}

}  // namespace
}  // namespace kshot::cve
