// Async-adversary hardening (DESIGN.md §11): the seeded attacker campaign's
// prevented-or-detected contract, the TOCTOU regressions the single-fetch
// snapshot discipline closed, schedule wire round-tripping, and the
// introspection-repair surfacing that replaced the old silent repair.
#include <gtest/gtest.h>

#include "attacks/async_adversary.hpp"
#include "attacks/rootkits.hpp"
#include "core/detection.hpp"
#include "core/smm_handler.hpp"
#include "fuzz/fuzz.hpp"
#include "testbed/testbed.hpp"

namespace kshot::attacks {
namespace {

using core::DetectionClass;
using testbed::Testbed;

std::unique_ptr<Testbed> boot(u64 seed = 0x7E57) {
  testbed::TestbedOptions opts;
  opts.seed = seed;
  auto tb = Testbed::boot(cve::find_case("CVE-2014-0196"), std::move(opts));
  EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
  return std::move(*tb);
}

AdversarySchedule one_action(AdversaryVariant var, AdversaryTrigger trig,
                             u16 param, u32 value) {
  AdversarySchedule s;
  s.actions.push_back(AdversaryAction{var, trig, param, value});
  return s;
}

// ---- Schedule wire -----------------------------------------------------------

TEST(AdversarySchedule, WireRoundTripsAndRejectsMalformed) {
  for (u64 seed : {1ull, 2ull, 0xDEADBEEFull}) {
    AdversarySchedule s = AdversarySchedule::generate(seed);
    ASSERT_FALSE(s.actions.empty());
    ASSERT_LE(s.actions.size(), AdversarySchedule::kMaxActions);
    Bytes wire = s.encode();
    auto back = AdversarySchedule::decode(wire);
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back->encode(), wire);
  }

  Bytes wire = AdversarySchedule::generate(7).encode();
  // Truncation, trailing garbage, and out-of-range enum fields all refuse
  // cleanly instead of decoding into something half-right.
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(AdversarySchedule::decode(truncated).is_ok());
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(AdversarySchedule::decode(trailing).is_ok());
  Bytes bad_variant = wire;
  bad_variant[1] = 0xEE;  // first action's variant byte
  EXPECT_FALSE(AdversarySchedule::decode(bad_variant).is_ok());
}

TEST(AdversarySchedule, GenerationIsSeedDeterministic) {
  EXPECT_EQ(AdversarySchedule::generate(42).encode(),
            AdversarySchedule::generate(42).encode());
  EXPECT_NE(AdversarySchedule::generate(42).encode(),
            AdversarySchedule::generate(43).encode());
}

// ---- The campaign contract ---------------------------------------------------

// Acceptance gate for the hardening: a seeded campaign across the whole
// variant taxonomy (mailbox flips, mem_W rewrites, replays, SMI
// suppression/duplication, mid-SMI races) must produce zero silent
// corruptions — the attacker_schedule surface's oracles compare post-run
// memory byte-for-byte against the no-attack baseline and insist failures
// carry a populated DetectionReport.
TEST(AdversaryCampaign, PreventedOrDetectedNeverSilent) {
  fuzz::FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 200;
  auto s = fuzz::make_attacker_schedule_surface();
  auto rep = fuzz::run_fuzz(*s, opts);
  EXPECT_EQ(rep.cases, opts.iters);
  EXPECT_TRUE(rep.failures.empty()) << rep.to_string();
  // The campaign must exercise both outcomes: schedules the pipeline rides
  // out (prevented) and schedules it has to refuse (detected).
  EXPECT_GT(rep.accepted, 0u);
  EXPECT_GT(rep.rejected, 0u);
}

TEST(AdversaryCampaign, DeterministicAcrossSurfaceInstances) {
  fuzz::FuzzOptions opts;
  opts.seed = 9;
  opts.iters = 40;
  auto s1 = fuzz::make_attacker_schedule_surface();
  auto s2 = fuzz::make_attacker_schedule_surface();
  EXPECT_EQ(fuzz::run_fuzz(*s1, opts).to_string(),
            fuzz::run_fuzz(*s2, opts).to_string());
}

// ---- Double-fetch regression (the tentpole's core seam) ----------------------

// A mem_W rewrite landing *between the handler's staged fetch and its use*
// is the classic TOCTOU window. Under the hardened single-fetch snapshot the
// bytes were already copied into SMRAM, so the write is invisible: the run
// succeeds first try with zero detections. The legacy seam re-reads from
// attacker-writable memory and must visibly degrade on the same schedule —
// that asymmetry is the regression proof that the snapshot collapse, not
// luck, closed the window.
TEST(AdversaryRegression, MidSmiRewriteInvisibleUnderSingleFetch) {
  AdversarySchedule sched = one_action(AdversaryVariant::kMidSmiMemWFlip,
                                       AdversaryTrigger::kOnStaged,
                                       /*param=*/5, /*value=*/0xCAFE);

  {
    auto t = boot();
    AsyncAdversary adv(t->machine(), t->kshot(), t->layout(), sched);
    adv.attach();
    auto rep = t->kshot().live_patch("CVE-2014-0196");
    ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
    EXPECT_GE(adv.actions_fired(), 1u) << "race window never opened";
    EXPECT_TRUE(rep->success);
    EXPECT_FALSE(rep->detections.any()) << rep->detections.to_string();
    EXPECT_EQ(rep->resilience.apply_attempts, 1u);
    auto exploit = t->run_exploit();
    ASSERT_TRUE(exploit.is_ok());
    EXPECT_FALSE(exploit->oops);
  }

  {
    auto t = boot();
    t->kshot().handler().enable_legacy_double_fetch_for_selftest();
    AsyncAdversary adv(t->machine(), t->kshot(), t->layout(), sched);
    adv.attach();
    auto rep = t->kshot().live_patch("CVE-2014-0196");
    ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
    EXPECT_TRUE(rep->detections.any() || !rep->success ||
                rep->resilience.apply_attempts > 1u)
        << "legacy double fetch shrugged off a mid-SMI rewrite";
  }
}

// The fuzz harness itself must catch that bug class end to end: re-open the
// seam, fuzz, and get a shrunk repro whose replay trips the same oracle.
TEST(AdversarySelftest, HarnessCatchesReopenedDoubleFetch) {
  fuzz::FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 120;
  auto s = fuzz::make_attacker_schedule_surface({.legacy_double_fetch = true});
  auto rep = fuzz::run_fuzz(*s, opts);
  ASSERT_FALSE(rep.failures.empty())
      << "oracles missed the reintroduced double fetch";
  for (const auto& f : rep.failures) {
    ASSERT_LE(f.input.size(), f.original_size);
    auto v = s->execute(f.input);
    ASSERT_TRUE(v.failure.has_value());
    EXPECT_EQ(v.failure->first, f.oracle);
  }
}

// ---- Mailbox-flip regressions (the two closed silent-success holes) ----------

// Flipping the apply command word to kIdle used to leave the helper reading
// the previous command's leftover kOk — a silent success with nothing
// applied. The handler's fresh-seq-with-idle check turns it into a
// classified kMailboxFlip; the retry path then lands the patch.
TEST(AdversaryRegression, CommandFlipToIdleIsDetectedNotSilent) {
  auto t = boot();
  AdversarySchedule sched =
      one_action(AdversaryVariant::kMailboxCmdFlip, AdversaryTrigger::kPreSmi,
                 /*param=*/1u << 8, /*value=*/0);  // occurrence 1 -> apply SMI
  AsyncAdversary adv(t->machine(), t->kshot(), t->layout(), sched);
  adv.attach();
  auto rep = t->kshot().live_patch("CVE-2014-0196");
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_GE(adv.actions_fired(), 1u);
  EXPECT_TRUE(rep->detections.has(DetectionClass::kMailboxFlip))
      << rep->detections.to_string();
  if (rep->success) {
    // Recovery is fine — but only through a visible extra attempt, and the
    // patch must actually be live.
    EXPECT_GT(rep->resilience.apply_attempts, 1u);
    auto exploit = t->run_exploit();
    ASSERT_TRUE(exploit.is_ok());
    EXPECT_FALSE(exploit->oops);
  }
}

// Flipping to a different *valid* command (kBeginSession) makes the handler
// write a genuine kOk for the wrong command; the status_cmd echo is what
// catches it.
TEST(AdversaryRegression, CommandFlipToValidCommandIsDetected) {
  auto t = boot();
  AdversarySchedule sched =
      one_action(AdversaryVariant::kMailboxCmdFlip, AdversaryTrigger::kPreSmi,
                 /*param=*/1u << 8, /*value=*/1);
  AsyncAdversary adv(t->machine(), t->kshot(), t->layout(), sched);
  adv.attach();
  auto rep = t->kshot().live_patch("CVE-2014-0196");
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_GE(adv.actions_fired(), 1u);
  EXPECT_TRUE(rep->detections.has(DetectionClass::kMailboxFlip))
      << rep->detections.to_string();
}

// Replaying a captured stale sealed envelope must classify (as kReplay when
// the ring recognizes the wire, kMemWRewrite when the capture was spoiled)
// rather than decrypt.
TEST(AdversaryRegression, StaleEnvelopeReplayIsDetected) {
  auto t = boot();
  AdversarySchedule sched;
  // First staging: capture the wire and spoil the live copy (arg bit 0) so
  // the attempt fails and the pipeline restages; second staging: write the
  // stale capture back over the fresh envelope.
  sched.actions.push_back(AdversaryAction{AdversaryVariant::kReplayEnvelope,
                                          AdversaryTrigger::kOnStaged,
                                          /*param=*/1, /*value=*/0});
  sched.actions.push_back(AdversaryAction{AdversaryVariant::kReplayEnvelope,
                                          AdversaryTrigger::kOnStaged,
                                          /*param=*/1u << 8, /*value=*/0});
  AsyncAdversary adv(t->machine(), t->kshot(), t->layout(), sched);
  adv.attach();
  auto rep = t->kshot().live_patch("CVE-2014-0196");
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_GE(adv.actions_fired(), 2u);
  EXPECT_TRUE(rep->detections.has(DetectionClass::kReplay) ||
              rep->detections.has(DetectionClass::kMemWRewrite))
      << rep->detections.to_string();
}

// ---- Introspection repairs are loud now --------------------------------------

// SmmPatchHandler::introspect used to repair tampering *silently*: the
// kernel was fixed but nothing upstream ever learned an attack happened.
// Repairs are now a first-class detection plus a metric.
TEST(AdversaryRegression, IntrospectionRepairSurfacesInReportAndMetric) {
  auto t = boot();
  auto rootkit = std::make_shared<ReversionRootkit>(t->pre_image());
  t->kernel().insmod(rootkit);

  auto patch = t->kshot().live_patch("CVE-2014-0196");
  ASSERT_TRUE(patch.is_ok()) << patch.status().to_string();
  ASSERT_TRUE(patch->success);
  t->scheduler().run(1);
  ASSERT_GE(rootkit->reversions(), 1u);

  const u64 repairs_before = t->kshot().handler().introspect_repairs();
  auto rep = t->kshot().introspect();
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_GE(rep->trampolines_reverted, 1u);

  EXPECT_GT(t->kshot().handler().introspect_repairs(), repairs_before)
      << "smm.introspect_repairs metric not bumped";
  auto det = t->kshot().take_detections();
  EXPECT_TRUE(det.has(DetectionClass::kIntrospectionRepair))
      << det.to_string();
}

}  // namespace
}  // namespace kshot::attacks
