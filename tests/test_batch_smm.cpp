// Batched SMM sessions (one seal->stage->apply SMI pair installing N
// packages as N rollback units) and the content-addressed patch-prep
// caches, plus the bench-regression goldens that gate both: the modeled
// numbers in BENCH_table3/4.json must be byte-identical across worker
// counts and must not regress against the checked-in baseline.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>

#include "benchkit/benchkit.hpp"
#include "core/kshot.hpp"
#include "core/mailbox.hpp"
#include "core/smm_handler.hpp"
#include "crypto/aead.hpp"
#include "cve/suite.hpp"
#include "kcc/compiler.hpp"
#include "patchtool/package.hpp"
#include "patchtool/prep_cache.hpp"
#include "testbed/testbed.hpp"

namespace kshot {
namespace {

using core::SmmCommand;
using core::SmmStatus;

/// sim-4.4 cases with pairwise-distinct functions — safe to merge into one
/// kernel and ship as one batched session (same set the bench uses).
const std::vector<std::string> kBatchIds = {
    "CVE-2016-2543", "CVE-2016-4578", "CVE-2016-4580", "CVE-2016-5829",
    "CVE-2016-7916"};

std::vector<std::string> first_ids(size_t k) {
  return {kBatchIds.begin(), kBatchIds.begin() + static_cast<long>(k)};
}

/// Boots the merged all-vulnerable kernel for the first `k` batchable CVEs,
/// announces each part's patch to the server, and wires each part's
/// syscall, so per-CVE exploits can be fired before/after the batch.
struct BatchDeployment {
  std::vector<cve::CveCase> parts;
  std::unique_ptr<testbed::Testbed> tb;

  static BatchDeployment boot(size_t k, testbed::TestbedOptions topts = {}) {
    BatchDeployment d;
    auto ids = first_ids(k);
    auto batch = cve::combine_cases(ids);
    EXPECT_TRUE(batch.is_ok()) << batch.status().to_string();
    auto parts = cve::batch_part_cases(ids);
    EXPECT_TRUE(parts.is_ok()) << parts.status().to_string();
    if (!batch.is_ok() || !parts.is_ok()) return d;
    d.parts = std::move(*parts);
    auto tb = testbed::Testbed::boot(batch->merged, std::move(topts));
    EXPECT_TRUE(tb.is_ok()) << tb.status().to_string();
    if (!tb.is_ok()) return d;
    d.tb = std::move(*tb);
    for (const auto& p : d.parts) {
      d.tb->server().add_patch({p.id, p.kernel, p.pre_source, p.post_source});
      EXPECT_TRUE(d.tb->kernel()
                      .register_syscall(p.syscall_nr, p.entry_function)
                      .is_ok());
    }
    return d;
  }

  /// True iff the part's exploit still oopses the kernel.
  bool exploit_fires(const cve::CveCase& p) {
    auto e = tb->run_syscall(p.syscall_nr, p.exploit_args);
    EXPECT_TRUE(e.is_ok()) << p.id;
    return e.is_ok() && e->oops;
  }
};

// ---- Batched sessions --------------------------------------------------------

TEST(BatchSession, FivePackagesOneSessionBeatsSequential) {
  auto batched = BatchDeployment::boot(5);
  ASSERT_TRUE(batched.tb);
  for (const auto& p : batched.parts) {
    EXPECT_TRUE(batched.exploit_fires(p)) << p.id << " not vulnerable pre";
  }

  auto rep = batched.tb->kshot().live_patch_batch(first_ids(5));
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success) << core::smm_status_name(rep->smm_status);
  u64 batch_smis = batched.tb->machine().smi_count();
  EXPECT_EQ(batch_smis, 2u);  // one session: begin + apply
  EXPECT_EQ(batched.tb->kshot().handler().installed().size() >= 5, true);
  for (const auto& p : batched.parts) {
    EXPECT_FALSE(batched.exploit_fires(p)) << p.id << " survived batch";
    auto b = batched.tb->run_syscall(p.syscall_nr, p.benign_args);
    ASSERT_TRUE(b.is_ok());
    EXPECT_FALSE(b->oops) << p.id << " benign path broken";
  }

  // Sequential leg on an identical deployment: five full sessions.
  auto seq = BatchDeployment::boot(5);
  ASSERT_TRUE(seq.tb);
  u64 seq_downtime = 0;
  for (const auto& id : first_ids(5)) {
    auto r = seq.tb->kshot().live_patch(id);
    ASSERT_TRUE(r.is_ok()) << id;
    ASSERT_TRUE(r->success) << id;
    seq_downtime += r->downtime_cycles;
  }
  EXPECT_EQ(seq.tb->machine().smi_count(), 10u);
  // The acceptance bar: the batch pays one SMI entry/exit and one keygen,
  // so its modeled downtime must be *strictly* lower.
  EXPECT_LT(rep->downtime_cycles, seq_downtime);
}

TEST(BatchSession, MidBatchFailureLeavesMemoryByteIdentical) {
  // Handler-level rig (the MaliciousPackage protocol): stage a batch whose
  // third package fails digest verification. The two valid packages in
  // front must not leave a single byte behind.
  kernel::MemoryLayout lay;
  lay.mem_bytes = 0x20'0000;
  lay.smram_base = 0xA0000;
  lay.smram_size = 0x20000;
  lay.text_base = 0x10'0000;
  lay.text_max = 0x2'0000;
  lay.data_base = 0x14'0000;
  lay.data_max = 0x8000;
  lay.stacks_base = 0x14'8000;
  lay.stack_size = 0x1000;
  lay.max_threads = 4;
  lay.module_base = 0x15'0000;
  lay.module_size = 0x8000;
  lay.reserved_base = 0x16'0000;
  lay.mem_rw_size = 0x1000;
  lay.mem_w_size = 0x1'0000;
  lay.mem_x_size = 0x2'0000;
  lay.epc_base = 0x1A'0000;
  lay.epc_size = 0x1'0000;

  machine::Machine m(lay.mem_bytes, lay.smram_base, lay.smram_size, 0x7E57);
  core::SmmPatchHandler handler(lay, 0x7E57);
  ASSERT_TRUE(m.set_smm_handler([&handler](machine::Machine& mm) {
                 handler.on_smi(mm);
               }).is_ok());

  auto make_pkg = [&](u64 taddr, u64 paddr) {
    patchtool::PatchSet s;
    s.id = "B";
    s.kernel_version = "sim-4.4";
    patchtool::FunctionPatch p;
    p.name = "fn";
    p.taddr = taddr;
    p.paddr = paddr;
    p.ftrace_off = 5;
    p.code = Bytes(32, 0x90);
    s.patches.push_back(std::move(p));
    return patchtool::serialize_patchset_raw(s);
  };
  Bytes bad = make_pkg(lay.text_base + 0x180, lay.mem_x_base() + 0x800);
  bad[12] ^= 0xFF;  // corrupt the set digest
  Bytes wire = patchtool::serialize_batch(
      {make_pkg(lay.text_base + 0x40, lay.mem_x_base()),
       make_pkg(lay.text_base + 0x100, lay.mem_x_base() + 0x400),
       std::move(bad)});

  const auto mode = machine::AccessMode::normal();
  core::Mailbox mbox(m.mem(), lay.mem_rw_base(), mode);
  ASSERT_TRUE(mbox.write_command(SmmCommand::kBeginSession).is_ok());
  m.trigger_smi();
  auto smm_pub = mbox.read_smm_pub();
  ASSERT_TRUE(smm_pub.is_ok());
  Rng rng(0xBAD5EED);
  auto keys = crypto::dh_generate(rng);
  auto shared = crypto::dh_shared(keys.private_key, *smm_pub);
  auto key =
      crypto::derive_key(ByteSpan(shared.data(), shared.size()), "sgx-smm");
  crypto::Nonce96 nonce{};
  rng.fill(MutByteSpan(nonce.data(), nonce.size()));
  Bytes sealed = crypto::seal(key, nonce, wire).serialize();
  ASSERT_TRUE(m.mem().write(lay.mem_w_base(), sealed, mode).is_ok());
  ASSERT_TRUE(mbox.write_enclave_pub(keys.public_key).is_ok());
  ASSERT_TRUE(mbox.write_staged_size(sealed.size()).is_ok());

  Bytes snapshot(m.mem().raw(0, lay.mem_bytes),
                 m.mem().raw(0, lay.mem_bytes) + lay.mem_bytes);

  ASSERT_TRUE(mbox.write_command(SmmCommand::kApplyBatch).is_ok());
  m.trigger_smi();
  auto st = mbox.read_status();
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(*st, SmmStatus::kDigestFailure);
  EXPECT_TRUE(handler.installed().empty());

  const u8* cur = m.mem().raw(0, lay.mem_bytes);
  for (size_t i = 0; i < lay.mem_bytes; ++i) {
    if (i >= lay.smram_base && i < lay.smram_base + lay.smram_size) continue;
    if (i >= lay.mem_rw_base() && i < lay.mem_rw_base() + lay.mem_rw_size) {
      continue;
    }
    ASSERT_EQ(cur[i], snapshot[i]) << "memory differs at 0x" << std::hex << i;
  }
}

TEST(BatchSession, RollbackPeelsUnitsInReverseOrder) {
  auto d = BatchDeployment::boot(3);
  ASSERT_TRUE(d.tb);
  auto rep = d.tb->kshot().live_patch_batch(first_ids(3));
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success);
  for (const auto& p : d.parts) EXPECT_FALSE(d.exploit_fires(p)) << p.id;

  // Units pop in reverse batch order: each rollback resurrects exactly the
  // most recently installed part's vulnerability.
  for (size_t step = 0; step < d.parts.size(); ++step) {
    auto rb = d.tb->kshot().rollback();
    ASSERT_TRUE(rb.is_ok()) << rb.status().to_string();
    EXPECT_EQ(rb->smm_status, SmmStatus::kOk) << "step " << step;
    size_t alive_from = d.parts.size() - 1 - step;
    for (size_t i = 0; i < d.parts.size(); ++i) {
      bool fires = d.exploit_fires(d.parts[i]);
      EXPECT_EQ(fires, i >= alive_from)
          << d.parts[i].id << " after rollback step " << step;
    }
  }
  EXPECT_TRUE(d.tb->kshot().handler().installed().empty());
  auto rb = d.tb->kshot().rollback();
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(rb->smm_status, SmmStatus::kNothingToRollback);
}

TEST(BatchSession, IntrospectionSweepCoversEveryTrampoline) {
  auto d = BatchDeployment::boot(3);
  ASSERT_TRUE(d.tb);
  auto rep = d.tb->kshot().live_patch_batch(first_ids(3));
  ASSERT_TRUE(rep.is_ok());
  ASSERT_TRUE(rep->success);
  size_t installed = d.tb->kshot().handler().installed().size();
  EXPECT_GE(installed, 3u);

  auto sweep = d.tb->kshot().introspect();
  ASSERT_TRUE(sweep.is_ok()) << sweep.status().to_string();
  EXPECT_EQ(sweep->patches_checked, installed);
  EXPECT_TRUE(sweep->clean());
}

// ---- Prep caches -------------------------------------------------------------

TEST(PrepCache, WarmBuildByteIdenticalToColdAndHits) {
  // Server A builds part[1] cold; server B builds part[0] first, warming
  // the function-normalization cache (the two parts share the entire
  // merged pre-image), then part[1]. Same bytes, nonzero hits.
  auto d = BatchDeployment::boot(2);
  ASSERT_TRUE(d.tb);
  kernel::OsInfo os = d.tb->kernel().os_info();

  auto build = [&](netsim::PatchServer& srv, const std::string& id) {
    auto set = srv.build_patchset(id, os);
    EXPECT_TRUE(set.is_ok()) << set.status().to_string();
    return set.is_ok() ? patchtool::serialize_patchset_raw(*set) : Bytes{};
  };

  netsim::PatchServer cold(nullptr, 0xA11CE);
  netsim::PatchServer warm(nullptr, 0xB0B);
  for (const auto& p : d.parts) {
    cold.add_patch({p.id, p.kernel, p.pre_source, p.post_source});
    warm.add_patch({p.id, p.kernel, p.pre_source, p.post_source});
  }

  Bytes from_cold = build(cold, d.parts[1].id);
  Bytes warmup = build(warm, d.parts[0].id);
  u64 hits_before = warm.prep_hits();
  Bytes from_warm = build(warm, d.parts[1].id);

  ASSERT_FALSE(from_cold.empty());
  EXPECT_EQ(from_cold, from_warm);
  EXPECT_GT(warm.prep_hits(), hits_before);
}

TEST(PrepCache, SameBodyDifferentRelocContextMisses) {
  // Two kernels whose `caller` bodies are byte-identical but whose rel32
  // callee resolves to a differently named symbol: the stored witnesses
  // must refuse the hit, because normalization folds in the callee name.
  auto opts = testbed::options_for_layout(kernel::MemoryLayout{}, "sim-4.4");
  auto make = [&](const std::string& helper) {
    std::string src = "fn " + helper +
                      "(a) { return a + 1; }\n"
                      "fn caller(a) { return " +
                      helper + "(a); }\n";
    auto img = kcc::compile_source(src, opts);
    EXPECT_TRUE(img.is_ok()) << img.status().to_string();
    return std::move(*img);
  };
  kcc::KernelImage img_x = make("helper_x");
  kcc::KernelImage img_y = make("helper_y");

  // Identical code bytes, so the content half of the key collides...
  auto body_x = img_x.function_bytes("caller");
  auto body_y = img_y.function_bytes("caller");
  ASSERT_TRUE(body_x.is_ok() && body_y.is_ok());
  ASSERT_EQ(*body_x, *body_y);

  patchtool::PrepCache cache;
  const kcc::Symbol* sym_x = img_x.find_symbol("caller");
  const kcc::Symbol* sym_y = img_y.find_symbol("caller");
  ASSERT_TRUE(sym_x && sym_y);

  ASSERT_TRUE(
      patchtool::normalize_function(img_x, *sym_x, &cache).is_ok());
  EXPECT_EQ(cache.misses(), 1u);
  // Same image again: witness re-resolves, hit.
  ASSERT_TRUE(
      patchtool::normalize_function(img_x, *sym_x, &cache).is_ok());
  EXPECT_EQ(cache.hits(), 1u);
  // ...but the reloc-context half (callee symbol name) differs: miss.
  ASSERT_TRUE(
      patchtool::normalize_function(img_y, *sym_y, &cache).is_ok());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PrepCache, SingleFlightUnderConcurrentFetches) {
  auto d = BatchDeployment::boot(1);
  ASSERT_TRUE(d.tb);
  kernel::OsInfo os = d.tb->kernel().os_info();
  netsim::PatchServer server(nullptr, 0x5EED);
  const auto& p = d.parts[0];
  server.add_patch({p.id, p.kernel, p.pre_source, p.post_source});

  constexpr int kThreads = 8;
  std::vector<Bytes> wires(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    pool.emplace_back([&, i] {
      auto set = server.build_patchset(p.id, os);
      if (set.is_ok()) wires[static_cast<size_t>(i)] =
          patchtool::serialize_patchset_raw(*set);
    });
  }
  for (auto& t : pool) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_FALSE(wires[static_cast<size_t>(i)].empty()) << "thread " << i;
    EXPECT_EQ(wires[static_cast<size_t>(i)], wires[0]);
  }
  auto stats = server.cache_stats();
  EXPECT_EQ(stats.patchset_misses, 1u);
  EXPECT_EQ(stats.patchset_hits, static_cast<u64>(kThreads - 1));
}

TEST(PrepCache, EnclaveRetargetCacheHitsOnRepatch) {
  obs::MetricsRegistry reg;
  testbed::TestbedOptions topts;
  topts.metrics = &reg;
  auto d = BatchDeployment::boot(1, std::move(topts));
  ASSERT_TRUE(d.tb);
  const std::string id = d.parts[0].id;

  auto rep = d.tb->kshot().live_patch(id);
  ASSERT_TRUE(rep.is_ok());
  ASSERT_TRUE(rep->success);
  u64 misses_cold = reg.counter("enclave.prep_misses").value();
  EXPECT_GT(misses_cold, 0u);

  auto rb = d.tb->kshot().rollback();
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(rb->smm_status, SmmStatus::kOk);

  // Re-patching the same id re-preprocesses the identical package at the
  // identical placement: every retarget comes from the enclave prep cache.
  d.tb->kshot().enclave().reset_mem_x_cursor();
  auto rep2 = d.tb->kshot().live_patch(id);
  ASSERT_TRUE(rep2.is_ok());
  ASSERT_TRUE(rep2->success);
  EXPECT_GT(reg.counter("enclave.prep_hits").value(), 0u);
  EXPECT_EQ(reg.counter("enclave.prep_misses").value(), misses_cold);
}

// ---- Bench goldens + gate ----------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(BenchGolden, ModeledTablesByteIdenticalAcrossJobs) {
  benchkit::BenchOptions o1;
  o1.quick = true;
  o1.jobs = 1;
  benchkit::BenchOptions o8 = o1;
  o8.jobs = 8;
  auto r1 = benchkit::run_bench(o1);
  auto r8 = benchkit::run_bench(o8);
  ASSERT_TRUE(r1.is_ok()) << r1.status().to_string();
  ASSERT_TRUE(r8.is_ok()) << r8.status().to_string();

  // Worker count must never leak into the modeled documents...
  EXPECT_EQ(r1->table3_json, r8->table3_json);
  EXPECT_EQ(r1->table4_json, r8->table4_json);

  // ...and the checked-in goldens are exactly this seed's output.
  EXPECT_EQ(r1->table3_json,
            read_file(std::string(KSHOT_CORPUS_DIR) +
                      "/bench/BENCH_table3.json"));
  EXPECT_EQ(r1->table4_json,
            read_file(std::string(KSHOT_CORPUS_DIR) +
                      "/bench/BENCH_table4.json"));
}

TEST(BenchGate, PassesOnBaselineAndFailsOnInflatedCosts) {
  std::string golden3 =
      read_file(std::string(KSHOT_CORPUS_DIR) + "/bench/BENCH_table3.json");
  std::string golden4 =
      read_file(std::string(KSHOT_CORPUS_DIR) + "/bench/BENCH_table4.json");
  ASSERT_FALSE(golden3.empty());
  ASSERT_FALSE(golden4.empty());

  // Baseline vs itself: clean.
  auto self3 = benchkit::gate_compare(golden3, golden3, 0.02);
  auto self4 = benchkit::gate_compare(golden4, golden4, 0.02);
  ASSERT_TRUE(self3.is_ok()) << self3.status().to_string();
  ASSERT_TRUE(self4.is_ok()) << self4.status().to_string();
  EXPECT_TRUE(self3->ok()) << self3->to_string();
  EXPECT_TRUE(self4->ok()) << self4->to_string();

  // A 10% modeled-cost inflation must trip the 2% gate.
  benchkit::BenchOptions inflated;
  inflated.quick = true;
  inflated.jobs = 8;
  inflated.cost_scale = 1.10;
  auto res = benchkit::run_bench(inflated);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  auto gate = benchkit::gate_compare(golden3, res->table3_json, 0.02);
  ASSERT_TRUE(gate.is_ok()) << gate.status().to_string();
  EXPECT_FALSE(gate->ok());
  EXPECT_FALSE(gate->regressions.empty());

  // Missing keys are failures too, not silent passes.
  auto missing = benchkit::gate_compare(golden3, "{}", 0.02);
  ASSERT_TRUE(missing.is_ok());
  EXPECT_FALSE(missing->ok());
  EXPECT_FALSE(missing->missing_keys.empty());
}

TEST(BenchGate, WallSidecarsWarnSoftlyAndNeverFail) {
  // Wall time is real and noisy, so the sidecar gate is soft: a >10%
  // regression lands in warnings with a distinct message, but ok() — and
  // therefore the build — is untouched.
  const std::string baseline = R"({"rows": [{"name": "a", "wall_us": 100.0},
                                            {"name": "b", "wall_us": 50.0}]})";
  const std::string slower = R"({"rows": [{"name": "a", "wall_us": 150.0},
                                          {"name": "b", "wall_us": 51.0}]})";
  auto gate = benchkit::wall_compare(baseline, slower, 0.10);
  ASSERT_TRUE(gate.is_ok()) << gate.status().to_string();
  ASSERT_EQ(gate->warnings.size(), 1u);  // only the 50% jump, not the 2%
  EXPECT_TRUE(gate->regressions.empty());
  EXPECT_TRUE(gate->ok()) << "wall warnings must not fail the gate";
  EXPECT_NE(gate->to_string().find("WALL WARNING"), std::string::npos);

  // Within tolerance (and improvements): silent pass.
  auto clean = benchkit::wall_compare(baseline, baseline, 0.10);
  ASSERT_TRUE(clean.is_ok());
  EXPECT_TRUE(clean->warnings.empty());

  // A key that vanished from the sidecar warns instead of failing.
  const std::string partial = R"({"rows": [{"name": "a", "wall_us": 100.0}]})";
  auto sparse = benchkit::wall_compare(baseline, partial, 0.10);
  ASSERT_TRUE(sparse.is_ok());
  EXPECT_FALSE(sparse->warnings.empty());
  EXPECT_TRUE(sparse->ok());
  EXPECT_TRUE(sparse->missing_keys.empty());

  // And the modeled-cost hard gate is unchanged by all of this: the same
  // 50% jump through gate_compare is a real regression.
  auto hard = benchkit::gate_compare(baseline, slower, 0.10);
  ASSERT_TRUE(hard.is_ok());
  EXPECT_FALSE(hard->ok());
  EXPECT_FALSE(hard->regressions.empty());
}

}  // namespace
}  // namespace kshot
