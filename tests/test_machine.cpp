// Machine substrate tests: page-attribute enforcement per access mode,
// SMRAM/EPC isolation, the interpreter, SMI state save/restore, and the
// virtual clock.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "machine/machine.hpp"

namespace kshot::machine {
namespace {

constexpr PhysAddr kSmramBase = 0xA0000;
constexpr size_t kSmramSize = 0x20000;

Machine make_machine() { return Machine(8 << 20, kSmramBase, kSmramSize); }

// ---- PhysMem access control ---------------------------------------------

TEST(PhysMem, NormalReadWrite) {
  Machine m = make_machine();
  Bytes data = {1, 2, 3, 4};
  ASSERT_TRUE(m.mem().write(0x1000, data, AccessMode::normal()).is_ok());
  auto r = m.mem().read_bytes(0x1000, 4, AccessMode::normal());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, data);
}

TEST(PhysMem, OutOfRangeRejected) {
  Machine m = make_machine();
  Bytes data(16, 0);
  EXPECT_EQ(m.mem().write((8 << 20) - 8, data, AccessMode::normal()).code(),
            Errc::kOutOfRange);
  EXPECT_FALSE(m.mem().read_u64(~0ull - 4, AccessMode::normal()).is_ok());
}

TEST(PhysMem, SmramBlockedFromNormalMode) {
  Machine m = make_machine();
  Bytes data = {0xAA};
  EXPECT_EQ(m.mem().write(kSmramBase + 0x100, data, AccessMode::normal())
                .code(),
            Errc::kPermissionDenied);
  EXPECT_FALSE(
      m.mem().read_bytes(kSmramBase, 8, AccessMode::normal()).is_ok());
  // SMM can use it freely.
  EXPECT_TRUE(m.mem().write(kSmramBase + 0x100, data, AccessMode::smm())
                  .is_ok());
}

TEST(PhysMem, WriteOnlyPageSemantics) {
  Machine m = make_machine();
  m.mem().set_attrs(0x2000, kPageSize, {false, true, false, 0});
  Bytes data = {7};
  EXPECT_TRUE(m.mem().write(0x2000, data, AccessMode::normal()).is_ok());
  EXPECT_EQ(m.mem().read_bytes(0x2000, 1, AccessMode::normal())
                .status()
                .code(),
            Errc::kPermissionDenied);
  // SMM bypasses attributes.
  auto r = m.mem().read_bytes(0x2000, 1, AccessMode::smm());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((*r)[0], 7);
}

TEST(PhysMem, ExecOnlyPageSemantics) {
  Machine m = make_machine();
  m.mem().set_attrs(0x3000, kPageSize, {false, false, true, 0});
  u8 buf[4];
  EXPECT_FALSE(
      m.mem().read(0x3000, MutByteSpan(buf, 4), AccessMode::normal()).is_ok());
  EXPECT_TRUE(m.mem()
                  .fetch(0x3000, 4, MutByteSpan(buf, 4), AccessMode::normal())
                  .is_ok());
  Bytes data = {1};
  EXPECT_FALSE(m.mem().write(0x3000, data, AccessMode::normal()).is_ok());
}

TEST(PhysMem, EpcBlockedFromNormalAndSmm) {
  Machine m = make_machine();
  PageAttr epc{false, false, false, 3};
  m.mem().set_attrs(0x5000, kPageSize, epc);
  EXPECT_FALSE(m.mem().read_bytes(0x5000, 8, AccessMode::normal()).is_ok());
  EXPECT_FALSE(m.mem().read_bytes(0x5000, 8, AccessMode::smm()).is_ok());
  // The owning enclave can touch it; another enclave cannot.
  EXPECT_TRUE(m.mem().read_bytes(0x5000, 8, AccessMode::enclave(3)).is_ok());
  EXPECT_FALSE(m.mem().read_bytes(0x5000, 8, AccessMode::enclave(4)).is_ok());
}

TEST(PhysMem, EnclaveBlockedFromSmram) {
  Machine m = make_machine();
  EXPECT_FALSE(
      m.mem().read_bytes(kSmramBase, 8, AccessMode::enclave(1)).is_ok());
}

TEST(PhysMem, AttrsSpanPages) {
  Machine m = make_machine();
  m.mem().set_attrs(0x6000, 3 * kPageSize, {true, false, false, 0});
  EXPECT_FALSE(m.mem().attrs_at(0x6000).write);
  EXPECT_FALSE(m.mem().attrs_at(0x6000 + 2 * kPageSize).write);
  EXPECT_TRUE(m.mem().attrs_at(0x6000 + 3 * kPageSize).write);
}

// ---- Interpreter -----------------------------------------------------------

/// Assembles code at `base`, points rip at it and runs to a terminal state.
StepResult run_code(Machine& m, const Bytes& code, u64 base = 0x1000,
                    u64 max = 10000) {
  EXPECT_TRUE(m.mem().write(base, code, AccessMode::smm()).is_ok());
  m.cpu().rip = base;
  m.cpu().sp() = 0x100000;
  return m.run(max);
}

TEST(Interp, ArithmeticChain) {
  Machine m = make_machine();
  isa::Assembler a;
  a.movi(1, 10);
  a.movi(2, 3);
  a.mov(0, 1);
  a.alu(isa::Op::kMul, 0, 2);   // 30
  a.alui(isa::Op::kAddi, 0, 12); // 42
  a.hlt();
  auto res = run_code(m, *a.finish());
  EXPECT_EQ(res.kind, StepKind::kHalt);
  EXPECT_EQ(m.cpu().regs[0], 42u);
}

TEST(Interp, DivideByZeroOops) {
  Machine m = make_machine();
  isa::Assembler a;
  a.movi(1, 5);
  a.movi(2, 0);
  a.alu(isa::Op::kDiv, 1, 2);
  a.hlt();
  auto res = run_code(m, *a.finish());
  EXPECT_EQ(res.kind, StepKind::kOops);
}

TEST(Interp, SignedComparisons) {
  Machine m = make_machine();
  isa::Assembler a;
  auto less = a.new_label();
  a.movi(1, -5);
  a.movi(2, 3);
  a.cmp(1, 2);
  a.jl(less);          // -5 < 3 signed: taken
  a.movi(0, 0);
  a.hlt();
  a.bind(less);
  a.movi(0, 1);
  a.hlt();
  auto res = run_code(m, *a.finish());
  EXPECT_EQ(res.kind, StepKind::kHalt);
  EXPECT_EQ(m.cpu().regs[0], 1u);
}

TEST(Interp, CallAndReturn) {
  Machine m = make_machine();
  isa::Assembler a;
  auto fn = a.new_label();
  a.branch(isa::Op::kCall, fn);
  a.hlt();
  a.bind(fn);
  a.movi(0, 123);
  a.ret();
  auto res = run_code(m, *a.finish());
  EXPECT_EQ(res.kind, StepKind::kHalt);
  EXPECT_EQ(m.cpu().regs[0], 123u);
}

TEST(Interp, ReturnSentinelReported) {
  Machine m = make_machine();
  isa::Assembler a;
  a.movi(0, 9);
  a.ret();
  Bytes code = *a.finish();
  ASSERT_TRUE(m.mem().write(0x1000, code, AccessMode::smm()).is_ok());
  m.cpu().rip = 0x1000;
  m.cpu().sp() = 0x100000 - 8;
  ASSERT_TRUE(m.mem()
                  .write_u64(m.cpu().sp(), kReturnSentinel,
                             AccessMode::normal())
                  .is_ok());
  auto res = m.run(100);
  EXPECT_EQ(res.kind, StepKind::kRetTop);
  EXPECT_EQ(m.cpu().regs[0], 9u);
}

TEST(Interp, PushPopLoadStore) {
  Machine m = make_machine();
  isa::Assembler a;
  a.movi(3, 77);
  a.push(3);
  a.pop(4);
  a.storeg(4, 0x8000);
  a.loadg(5, 0x8000);
  a.movi(6, 0x9000);
  a.storer(5, 6, 16);
  a.loadr(0, 6, 16);
  a.hlt();
  auto res = run_code(m, *a.finish());
  EXPECT_EQ(res.kind, StepKind::kHalt);
  EXPECT_EQ(m.cpu().regs[0], 77u);
}

TEST(Interp, TrapCarriesCode) {
  Machine m = make_machine();
  isa::Assembler a;
  a.trap(42);
  auto res = run_code(m, *a.finish());
  EXPECT_EQ(res.kind, StepKind::kOops);
  EXPECT_EQ(res.info, 42u);
}

TEST(Interp, FetchFromNonExecFaults) {
  Machine m = make_machine();
  isa::Assembler a;
  a.hlt();
  Bytes code = *a.finish();
  ASSERT_TRUE(m.mem().write(0x4000, code, AccessMode::smm()).is_ok());
  m.mem().set_attrs(0x4000, kPageSize, {true, true, false, 0});
  m.cpu().rip = 0x4000;
  auto res = m.step();
  EXPECT_EQ(res.kind, StepKind::kMemFault);
}

TEST(Interp, WhileLoopViaBranches) {
  // sum 1..10 == 55
  Machine m = make_machine();
  isa::Assembler a;
  auto top = a.new_label(), done = a.new_label();
  a.movi(1, 0);   // i
  a.movi(0, 0);   // acc
  a.bind(top);
  a.cmpi(1, 10);
  a.jge(done);
  a.alui(isa::Op::kAddi, 1, 1);
  a.alu(isa::Op::kAdd, 0, 1);
  a.jmp(top);
  a.bind(done);
  a.hlt();
  auto res = run_code(m, *a.finish());
  EXPECT_EQ(res.kind, StepKind::kHalt);
  EXPECT_EQ(m.cpu().regs[0], 55u);
}

// ---- SMM ----------------------------------------------------------------------

TEST(Smm, StateSavedAndRestoredAcrossSmi) {
  Machine m = make_machine();
  bool ran = false;
  ASSERT_TRUE(m.set_smm_handler([&](Machine& mm) {
                 ran = true;
                 // Handler trashes live registers; RSM must restore them.
                 mm.cpu().regs[3] = 0xDEAD;
                 mm.cpu().rip = 0x666;
               })
                  .is_ok());
  m.cpu().regs[3] = 0x1234;
  m.cpu().rip = 0x1000;
  m.cpu().sp() = 0x2000;
  m.trigger_smi();
  EXPECT_TRUE(ran);
  EXPECT_EQ(m.cpu().regs[3], 0x1234u);
  EXPECT_EQ(m.cpu().rip, 0x1000u);
  EXPECT_EQ(m.cpu().sp(), 0x2000u);
  EXPECT_EQ(m.mode(), CpuMode::kProtected);
}

TEST(Smm, HandlerRunsInSmmMode) {
  Machine m = make_machine();
  CpuMode observed = CpuMode::kProtected;
  ASSERT_TRUE(
      m.set_smm_handler([&](Machine& mm) { observed = mm.mode(); }).is_ok());
  m.trigger_smi();
  EXPECT_EQ(observed, CpuMode::kSmm);
}

TEST(Smm, LockPreventsHandlerReplacement) {
  Machine m = make_machine();
  ASSERT_TRUE(m.set_smm_handler([](Machine&) {}).is_ok());
  m.lock_smram();
  auto st = m.set_smm_handler([](Machine&) {});
  EXPECT_EQ(st.code(), Errc::kPermissionDenied);
}

TEST(Smm, CyclesChargedForSwitch) {
  Machine m = make_machine();
  ASSERT_TRUE(m.set_smm_handler([](Machine&) {}).is_ok());
  u64 before = m.cycles();
  m.trigger_smi();
  u64 delta = m.cycles() - before;
  EXPECT_EQ(delta, m.cost_model().smi_entry_cycles + m.cost_model().rsm_cycles);
  EXPECT_EQ(m.smm_cycles(), delta);
  EXPECT_EQ(m.smi_count(), 1u);
}

TEST(Smm, SaveStateSerializesAllRegisters) {
  Machine m = make_machine();
  for (int i = 0; i < isa::kNumRegs; ++i) {
    m.cpu().regs[i] = 0x1000u + static_cast<u64>(i);
  }
  m.cpu().rip = 0xABCD;
  m.cpu().zf = true;
  m.save_state_to_smram();
  // Wipe and restore.
  for (auto& r : m.cpu().regs) r = 0;
  m.cpu().rip = 0;
  m.cpu().zf = false;
  m.restore_state_from_smram();
  for (int i = 0; i < isa::kNumRegs; ++i) {
    EXPECT_EQ(m.cpu().regs[i], 0x1000u + static_cast<u64>(i));
  }
  EXPECT_EQ(m.cpu().rip, 0xABCDu);
  EXPECT_TRUE(m.cpu().zf);
}

TEST(CostModel, UsConversion) {
  CostModel c;
  EXPECT_DOUBLE_EQ(c.to_us(3000), 1.0);
  EXPECT_NEAR(c.to_us(c.smi_entry_cycles), 12.9, 0.01);
  EXPECT_NEAR(c.to_us(c.rsm_cycles), 21.7, 0.01);
  EXPECT_NEAR(c.to_us(c.keygen_cycles), 5.2, 0.01);
}

// ---- Multi-CPU SMI rendezvous -------------------------------------------

TEST(SmmRendezvous, ZeroCpusRejected) {
  Machine m = make_machine();
  EXPECT_EQ(m.set_cpus(0).code(), Errc::kInvalidArgument);
  EXPECT_EQ(m.cpus(), 1u);
}

TEST(SmmRendezvous, HotplugInsideSmiRejected) {
  Machine m = make_machine();
  Status inner = Status::ok();
  ASSERT_TRUE(
      m.set_smm_handler([&inner](Machine& mm) { inner = mm.set_cpus(4); })
          .is_ok());
  m.trigger_smi();
  EXPECT_EQ(inner.code(), Errc::kFailedPrecondition);
  EXPECT_EQ(m.cpus(), 1u);
}

TEST(SmmRendezvous, SingleCpuByteCompatibleWithLegacyModel) {
  // set_cpus(1) must be indistinguishable from never calling it: same SMI
  // charges, same clock, no jitter RNG draws.
  Machine a = make_machine();
  Machine b = make_machine();
  ASSERT_TRUE(b.set_cpus(1).is_ok());
  auto handler = [](Machine& mm) { mm.charge_cycles(12'345); };
  ASSERT_TRUE(a.set_smm_handler(handler).is_ok());
  ASSERT_TRUE(b.set_smm_handler(handler).is_ok());
  for (int i = 0; i < 3; ++i) {
    a.trigger_smi();
    b.trigger_smi();
  }
  EXPECT_EQ(a.smm_cycles(), b.smm_cycles());
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.rendezvous_cycles_total(), b.rendezvous_cycles_total());
  EXPECT_EQ(a.resume_cycles_total(), b.resume_cycles_total());
}

TEST(SmmRendezvous, DecompositionSumsToDowntimeExactly) {
  for (u32 n : {1u, 4u, 16u}) {
    Machine m = make_machine();
    ASSERT_TRUE(m.set_cpus(n).is_ok());
    ASSERT_TRUE(
        m.set_smm_handler([](Machine& mm) { mm.charge_cycles(777); })
            .is_ok());
    for (int i = 0; i < 5; ++i) m.trigger_smi();
    EXPECT_EQ(m.rendezvous_cycles_total() + m.handler_cycles_total() +
                  m.resume_cycles_total(),
              m.smm_cycles())
        << "cpus=" << n;
    EXPECT_GT(m.handler_cycles_total(), 0u);
  }
}

TEST(SmmRendezvous, ParallelSixteenWithinBudgetSerialBlowsPast) {
  // The tentpole's acceptance numbers: broadcast rendezvous keeps a 16-CPU
  // SMI within 2.5x of single-CPU downtime while the naive serial model is
  // at least 8x.
  auto downtime = [](u32 n, bool serial) {
    Machine m = make_machine();
    EXPECT_TRUE(m.set_cpus(n).is_ok());
    m.set_serial_rendezvous(serial);
    EXPECT_TRUE(
        m.set_smm_handler([](Machine& mm) { mm.charge_cycles(30'000); })
            .is_ok());
    m.trigger_smi();
    return m.smm_cycles();
  };
  const u64 one = downtime(1, false);
  const u64 par16 = downtime(16, false);
  const u64 ser16 = downtime(16, true);
  EXPECT_LE(par16, one * 5 / 2) << "parallel 16-CPU exceeds the 2.5x budget";
  EXPECT_GE(ser16, one * 8) << "serial model suspiciously cheap";
  EXPECT_LT(par16, ser16);
}

TEST(SmmRendezvous, EarlyApReleaseShrinksResumeExactly) {
  Machine m = make_machine();
  ASSERT_TRUE(m.set_cpus(16).is_ok());
  u64 before = 0;
  u64 after = 0;
  ASSERT_TRUE(m.set_smm_handler([&](Machine& mm) {
                 before = mm.projected_resume_cycles();
                 mm.release_aps(10);
                 after = mm.projected_resume_cycles();
               }).is_ok());
  m.trigger_smi();
  EXPECT_LT(after, before);
  EXPECT_EQ(m.released_aps(), 10u);
  // RSM charges exactly the projection the handler saw.
  EXPECT_EQ(m.resume_cycles_total(), after);
  EXPECT_EQ(m.rendezvous_cycles_total() + m.handler_cycles_total() +
                m.resume_cycles_total(),
            m.smm_cycles());
}

TEST(SmmRendezvous, ReleaseClampsAndIgnoresOutsideSmm) {
  Machine m = make_machine();
  ASSERT_TRUE(m.set_cpus(4).is_ok());
  m.release_aps(2);  // outside SMM: no-op
  EXPECT_EQ(m.released_aps(), 0u);
  ASSERT_TRUE(m.set_smm_handler([](Machine& mm) {
                 mm.release_aps(100);  // clamped to cpus()-1
               }).is_ok());
  m.trigger_smi();
  EXPECT_EQ(m.released_aps(), 3u);
}

TEST(SmmRendezvous, JitterIsSeedDeterministic) {
  auto run = [](u64 seed) {
    Machine m(8 << 20, kSmramBase, kSmramSize, seed);
    EXPECT_TRUE(m.set_cpus(16).is_ok());
    EXPECT_TRUE(
        m.set_smm_handler([](Machine& mm) { mm.charge_cycles(1); }).is_ok());
    for (int i = 0; i < 4; ++i) m.trigger_smi();
    return m.smm_cycles();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // jitter stream actually depends on the seed
}

}  // namespace
}  // namespace kshot::machine
