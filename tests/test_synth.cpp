// The auto-CVE synthesizer's contract (DESIGN.md §14): every seed yields a
// well-formed case (sources compile, the diff is confined to the planted
// site, metadata matches the knobs), the full oracle stack passes on an
// unbounded seeded campaign, the campaign report is byte-identical across
// jobs, a deliberately mis-planted guard is caught, and synthesized cases
// flow through every live consumer — single live patch, in-place splice,
// batched SMM session, and the lifecycle supersede chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cve/synth.hpp"
#include "fuzz/fuzz.hpp"
#include "kcc/compiler.hpp"
#include "kcc/parser.hpp"
#include "patchtool/callgraph.hpp"
#include "testbed/testbed.hpp"

namespace kshot::cve {
namespace {

const BugClass kClasses[] = {BugClass::kOobWrite, BugClass::kMissingCheck,
                             BugClass::kTypeConfusion};

std::set<std::string> sorted(const std::vector<std::string>& v) {
  return {v.begin(), v.end()};
}

TEST(SynthIds, RoundTripThroughParseAndResolve) {
  for (BugClass cls : kClasses) {
    for (u64 seed : {u64{0}, u64{1}, u64{0x123456789ABCDEF0ULL}, ~u64{0}}) {
      std::string id = synth_id(cls, seed);
      auto back = parse_synth_id(id);
      ASSERT_TRUE(back.is_ok()) << id;
      EXPECT_EQ(back->first, cls);
      EXPECT_EQ(back->second, seed);
    }
  }
  EXPECT_FALSE(parse_synth_id("CVE-2014-0196").is_ok());
  EXPECT_FALSE(parse_synth_id("SYNTH-XXX-0000000000000000").is_ok());
  EXPECT_FALSE(parse_synth_id("SYNTH-OOB-nothex").is_ok());
}

TEST(SynthIds, ResolveCaseRegeneratesTheExactCase) {
  auto sc = make_case(BugClass::kMissingCheck, 0xFEED);
  ASSERT_TRUE(sc.is_ok()) << sc.status().to_string();
  auto resolved = resolve_case(sc->cve.id);
  ASSERT_TRUE(resolved.is_ok()) << resolved.status().to_string();
  EXPECT_EQ(resolved->pre_source, sc->cve.pre_source);
  EXPECT_EQ(resolved->post_source, sc->cve.post_source);
  EXPECT_EQ(resolved->syscall_nr, sc->cve.syscall_nr);
  EXPECT_EQ(resolved->exploit_args, sc->cve.exploit_args);
  EXPECT_EQ(resolved->types, sc->cve.types);

  // Table ids still resolve to the table entries; garbage is kNotFound.
  auto table = resolve_case("CVE-2014-0196");
  ASSERT_TRUE(table.is_ok());
  EXPECT_EQ(table->id, "CVE-2014-0196");
  auto bogus = resolve_case("CVE-1999-9999");
  ASSERT_FALSE(bogus.is_ok());
  EXPECT_EQ(bogus.status().code(), Errc::kNotFound);
}

TEST(SynthProperty, KnobNormalizationReconcilesInteractions) {
  for (BugClass cls : kClasses) {
    for (u32 i = 0; i < 64; ++i) {
      SynthKnobs k = knobs_for_seed(cls, synth_case_seed(0xA11CE, i));
      SynthKnobs again = k;
      normalize_knobs(again);  // knobs_for_seed output is already normal
      EXPECT_EQ(again.inline_flaw, k.inline_flaw);
      EXPECT_EQ(again.guard_in_helper, k.guard_in_helper);
      EXPECT_EQ(again.add_global_fix, k.add_global_fix);
      EXPECT_EQ(again.size_neutral_fix, k.size_neutral_fix);
      EXPECT_EQ(again.limit, k.limit);
      if (k.size_neutral_fix) {
        EXPECT_FALSE(k.inline_flaw);
        EXPECT_FALSE(k.add_global_fix);
      }
      if (k.inline_flaw) EXPECT_TRUE(k.guard_in_helper);
      EXPECT_GE(k.limit, 8u);
      EXPECT_LE(k.limit, 8192u);
    }
  }
}

// Satellite property sweep: 200 seeded cases per class must compile (pre
// and post), diff only at the planted site, and carry metadata that matches
// the shape knobs (inline flaw => Type 2, added global => Type 3).
TEST(SynthProperty, TwoHundredSeededCasesPerClassAreWellFormed) {
  kernel::MemoryLayout lay;
  auto copts = testbed::options_for_layout(lay, "sim-4.4");
  for (BugClass cls : kClasses) {
    for (u32 i = 0; i < 200; ++i) {
      u64 seed = synth_case_seed(0xC0FFEE + static_cast<u64>(cls), i);
      auto sc = make_case(cls, seed);
      ASSERT_TRUE(sc.is_ok())
          << bug_class_tag(cls) << " seed " << seed << ": "
          << sc.status().to_string();
      const CveCase& c = sc->cve;
      EXPECT_EQ(c.id, synth_id(cls, seed));

      auto pre = kcc::compile_source(c.pre_source, copts);
      ASSERT_TRUE(pre.is_ok()) << c.id << ": " << pre.status().to_string();
      auto post = kcc::compile_source(c.post_source, copts);
      ASSERT_TRUE(post.is_ok()) << c.id << ": " << post.status().to_string();

      // Diff confinement: the source-level diff is exactly the declared
      // planted site, and the only post-only global is the declared one.
      auto pre_m = kcc::parse(c.pre_source);
      auto post_m = kcc::parse(c.post_source);
      ASSERT_TRUE(pre_m.is_ok() && post_m.is_ok()) << c.id;
      auto changed = patchtool::source_changed_functions(*pre_m, *post_m);
      EXPECT_EQ(changed, sorted(sc->changed_functions)) << c.id;
      std::set<std::string> pre_globals, post_only;
      for (const auto& g : pre_m->globals) pre_globals.insert(g.name);
      for (const auto& g : post_m->globals) {
        if (pre_globals.count(g.name) == 0) post_only.insert(g.name);
      }
      if (sc->added_global.empty()) {
        EXPECT_TRUE(post_only.empty()) << c.id;
      } else {
        EXPECT_EQ(post_only, std::set<std::string>{sc->added_global}) << c.id;
      }

      // Metadata matches the shape knobs.
      EXPECT_EQ(c.has_type(2), sc->knobs.inline_flaw) << c.id;
      EXPECT_EQ(c.has_type(3), sc->knobs.add_global_fix) << c.id;
      EXPECT_EQ(sc->knobs.add_global_fix, !sc->added_global.empty()) << c.id;
      EXPECT_FALSE(c.functions.empty()) << c.id;
      EXPECT_GT(c.patch_loc, 0) << c.id;
    }
  }
}

// Acceptance gate: a 200-case campaign cycling all three classes passes the
// full oracle stack on every case, and the report is byte-identical across
// worker counts.
TEST(SynthOracle, CampaignOf200PassesAndIsJobsInvariant) {
  CampaignOptions o;
  o.seed = 0x5EED;
  o.cases = 200;
  o.jobs = 1;
  auto r1 = run_campaign(o);
  ASSERT_TRUE(r1.is_ok()) << r1.status().to_string();
  EXPECT_TRUE(r1->ok()) << r1->report;
  EXPECT_EQ(r1->cases, 200u);
  EXPECT_EQ(r1->passed, 200u);
  EXPECT_EQ(r1->failed, 0u);
  EXPECT_NE(r1->report.find("synth: OK (200/200 cases)"), std::string::npos)
      << r1->report;
  // All three classes actually ran.
  for (const char* tag : {"OOB", "CHK", "DSP"}) {
    EXPECT_NE(r1->report.find(tag), std::string::npos) << r1->report;
  }

  o.jobs = 3;
  auto r3 = run_campaign(o);
  ASSERT_TRUE(r3.is_ok()) << r3.status().to_string();
  EXPECT_EQ(r1->report, r3->report) << "worker count leaked into the report";
}

TEST(SynthOracle, RejectsDegenerateCampaignOptions) {
  CampaignOptions none;
  none.cases = 0;
  EXPECT_FALSE(run_campaign(none).is_ok());
  CampaignOptions empty;
  empty.classes.clear();
  EXPECT_FALSE(run_campaign(empty).is_ok());
}

// The generator must not be able to fool its own oracles: planting the
// defensive limit one too high (so the minimal exploit no longer traps
// pre-patch) must fail the probe contract.
TEST(SynthOracle, MisplantedGuardFailsTheProbeContract) {
  for (BugClass cls : {BugClass::kOobWrite, BugClass::kMissingCheck}) {
    auto sc = make_case(cls, 0xBAD5EED, {.misplant_off_by_one = true});
    ASSERT_TRUE(sc.is_ok()) << sc.status().to_string();
    Status st = check_case(*sc);
    ASSERT_FALSE(st.is_ok()) << bug_class_tag(cls)
                             << ": oracle missed the mis-planted guard";
    EXPECT_EQ(st.message().rfind("probe contract", 0), 0u) << st.to_string();
  }
}

// ---- Live-pipeline consumers ----------------------------------------------

TEST(SynthE2e, LivePatchEndToEndForEveryClass) {
  for (BugClass cls : kClasses) {
    auto sc = make_case(cls, 0x1000 + static_cast<u64>(cls));
    ASSERT_TRUE(sc.is_ok()) << sc.status().to_string();
    const CveCase& c = sc->cve;
    auto tb = testbed::Testbed::boot(c, {.seed = 0x777});
    ASSERT_TRUE(tb.is_ok()) << c.id << ": " << tb.status().to_string();
    testbed::Testbed& t = **tb;
    auto probe = testbed::prober(t);

    auto before = probe_case(c, probe, /*expect_fixed=*/false);
    ASSERT_TRUE(before.is_ok()) << before.status().to_string();
    EXPECT_TRUE(before->detail.empty()) << before->detail;
    ASSERT_TRUE(before->benign_ok) << c.id;

    auto rep = t.kshot().live_patch(c.id);
    ASSERT_TRUE(rep.is_ok()) << c.id << ": " << rep.status().to_string();
    ASSERT_TRUE(rep->success) << c.id;

    auto after = probe_case(c, probe, /*expect_fixed=*/true);
    ASSERT_TRUE(after.is_ok()) << after.status().to_string();
    EXPECT_TRUE(after->detail.empty()) << after->detail;
    EXPECT_TRUE(after->exploit_rejected) << c.id;
    EXPECT_EQ(after->benign_value, before->benign_value)
        << c.id << " patch changed benign behaviour";
  }
}

// A size-neutral fix must be splice-eligible: applied with allow_splice the
// enclave lays the fixed body into the old footprint (no trampoline).
TEST(SynthE2e, SizeNeutralCaseSplicesInPlace) {
  SynthKnobs k = knobs_for_seed(BugClass::kOobWrite, 0xDEED);
  k.size_neutral_fix = true;
  auto sc = make_case(k, 0xDEED);
  ASSERT_TRUE(sc.is_ok()) << sc.status().to_string();
  ASSERT_TRUE(sc->knobs.size_neutral_fix);
  const CveCase& c = sc->cve;

  auto tb = testbed::Testbed::boot(c, {.seed = 0x505});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  core::LifecycleOptions lo;
  lo.allow_splice = true;
  auto rep = (*tb)->kshot().live_patch(c.id, lo);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success);
  auto inv = (*tb)->kshot().query_applied();
  ASSERT_TRUE(inv.is_ok()) << inv.status().to_string();
  ASSERT_EQ(inv->units.size(), 1u);
  EXPECT_GT(inv->units[0].spliced, 0u)
      << c.id << " size-neutral fix was not spliced in place";

  auto after = probe_case(c, testbed::prober(**tb), /*expect_fixed=*/true);
  ASSERT_TRUE(after.is_ok());
  EXPECT_TRUE(after->detail.empty()) << after->detail;
}

// combine_cases/batch_part_cases accept synthesized ids: two generated CVEs
// merge into one kernel and ship in ONE batched SMM session.
TEST(SynthE2e, BatchedSessionOverSynthesizedIds) {
  std::vector<std::string> ids = {
      synth_id(BugClass::kOobWrite, 0xAAA1),
      synth_id(BugClass::kTypeConfusion, 0xBBB2),
  };
  auto batch = combine_cases(ids);
  ASSERT_TRUE(batch.is_ok()) << batch.status().to_string();
  auto parts = batch_part_cases(ids);
  ASSERT_TRUE(parts.is_ok()) << parts.status().to_string();

  auto tb = testbed::Testbed::boot(batch->merged, {.seed = 0x99});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;
  for (const auto& p : *parts) {
    t.server().add_patch({p.id, p.kernel, p.pre_source, p.post_source});
    ASSERT_TRUE(
        t.kernel().register_syscall(p.syscall_nr, p.entry_function).is_ok())
        << p.id;
  }
  auto rep = t.kshot().live_patch_batch(ids);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_TRUE(rep->success);
  for (const auto& p : *parts) {
    auto e = t.run_syscall(p.syscall_nr, p.exploit_args);
    ASSERT_TRUE(e.is_ok()) << p.id;
    EXPECT_FALSE(e->oops) << p.id << " still exploitable after batch";
  }
}

// The supersede chain: the partial fix kills exploit A but leaves flaw B;
// the cumulative fix supersedes it, retires the partial unit, and kills
// both exploits.
TEST(SynthE2e, SupersedeChainRetiresPartialFix) {
  auto pair = make_supersede_pair(0x5AFE);
  ASSERT_TRUE(pair.is_ok()) << pair.status().to_string();
  const CveCase& part = pair->partial;
  const CveCase& cum = pair->cumulative;

  auto tb = testbed::Testbed::boot(part, {.seed = 0x444});
  ASSERT_TRUE(tb.is_ok()) << tb.status().to_string();
  testbed::Testbed& t = **tb;
  t.server().add_patch({cum.id, cum.kernel, cum.pre_source, cum.post_source});

  // Both flaws live pre-patch.
  auto a0 = t.run_syscall(part.syscall_nr, part.exploit_args);
  ASSERT_TRUE(a0.is_ok());
  EXPECT_TRUE(a0->oops);
  auto b0 = t.run_syscall(part.syscall_nr, pair->exploit_b);
  ASSERT_TRUE(b0.is_ok());
  EXPECT_TRUE(b0->oops);
  EXPECT_EQ(b0->trap_code, pair->trap_b);

  // Partial fix: A dies, B still fires.
  auto rep1 = t.kshot().live_patch(part.id);
  ASSERT_TRUE(rep1.is_ok()) << rep1.status().to_string();
  ASSERT_TRUE(rep1->success);
  auto a1 = t.run_syscall(part.syscall_nr, part.exploit_args);
  ASSERT_TRUE(a1.is_ok());
  EXPECT_FALSE(a1->oops) << "partial fix did not kill exploit A";
  auto b1 = t.run_syscall(part.syscall_nr, pair->exploit_b);
  ASSERT_TRUE(b1.is_ok());
  EXPECT_TRUE(b1->oops) << "partial fix unexpectedly killed exploit B";

  // Cumulative fix supersedes the partial: both dead, one unit applied.
  core::LifecycleOptions lo;
  lo.supersedes = {part.id};
  auto rep2 = t.kshot().live_patch(cum.id, lo);
  ASSERT_TRUE(rep2.is_ok()) << rep2.status().to_string();
  ASSERT_TRUE(rep2->success);
  auto a2 = t.run_syscall(part.syscall_nr, part.exploit_args);
  auto b2 = t.run_syscall(part.syscall_nr, pair->exploit_b);
  ASSERT_TRUE(a2.is_ok() && b2.is_ok());
  EXPECT_FALSE(a2->oops);
  EXPECT_FALSE(b2->oops) << "cumulative fix did not kill exploit B";
  auto inv = t.kshot().query_applied();
  ASSERT_TRUE(inv.is_ok());
  ASSERT_EQ(inv->units.size(), 1u) << "partial unit was not retired";
  EXPECT_EQ(inv->units[0].id, cum.id);
}

// ---- probe_case unit contract ---------------------------------------------

/// Scripted probe: returns fixed outcomes per (nr, args) so the contract
/// classification is tested without any execution backend.
TEST(ProbeContract, ClassifiesScriptedOutcomes) {
  CveCase c;
  c.id = "SYNTH-TEST";
  c.syscall_nr = 42;
  c.trap_code = 99;
  c.exploit_args = {1, 0, 0, 0, 0};
  c.benign_args = {2, 0, 0, 0, 0};

  auto scripted = [&](ProbeOutcome on_exploit, ProbeOutcome on_benign) {
    return [=](int nr, const std::array<u64, 5>& args)
               -> Result<ProbeOutcome> {
      EXPECT_EQ(nr, 42);
      return args[0] == 1 ? on_exploit : on_benign;
    };
  };
  ProbeOutcome trap{true, 99, 0};
  ProbeOutcome wrong_trap{true, 7, 0};
  ProbeOutcome einval{false, 0, kEinval};
  ProbeOutcome benign{false, 0, 1234};

  // Vulnerable kernel, expected vulnerable: clean.
  auto r = probe_case(c, scripted(trap, benign), /*expect_fixed=*/false);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->detail.empty()) << r->detail;
  EXPECT_TRUE(r->exploit_trapped);
  EXPECT_TRUE(r->benign_ok);
  EXPECT_EQ(r->benign_value, 1234u);

  // Fixed kernel, expected fixed: clean.
  r = probe_case(c, scripted(einval, benign), /*expect_fixed=*/true);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r->detail.empty()) << r->detail;
  EXPECT_TRUE(r->exploit_rejected);

  // Exploit still fires on a supposedly fixed kernel.
  r = probe_case(c, scripted(trap, benign), /*expect_fixed=*/true);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NE(r->detail.find("still fires"), std::string::npos) << r->detail;

  // Exploit fails to fire on a supposedly vulnerable kernel.
  r = probe_case(c, scripted(einval, benign), /*expect_fixed=*/false);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NE(r->detail.find("did not trap"), std::string::npos) << r->detail;

  // Wrong trap code is a violation either way.
  r = probe_case(c, scripted(wrong_trap, benign), /*expect_fixed=*/false);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NE(r->detail.find("expected 99"), std::string::npos) << r->detail;

  // Benign input must never oops.
  r = probe_case(c, scripted(einval, trap), /*expect_fixed=*/true);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NE(r->detail.find("benign"), std::string::npos) << r->detail;

  // Null probe is an error, not a crash.
  EXPECT_FALSE(probe_case(c, ProbeFn{}, true).is_ok());
}

// ---- Fuzz surface ----------------------------------------------------------

TEST(SynthFuzz, SurfacePassesOnCurrentTree) {
  fuzz::FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 150;
  auto s = fuzz::make_cve_synth_surface();
  auto rep = fuzz::run_fuzz(*s, opts);
  EXPECT_TRUE(rep.failures.empty()) << rep.to_string();
  EXPECT_GT(rep.accepted, 0u);
}

// Acceptance gate for the synth oracles: with the mis-plant seam open the
// probe contract must catch it, and the shrunk repro must still trip the
// same oracle when replayed.
TEST(SynthFuzz, SelftestSeamCaughtWithShrunkRepro) {
  fuzz::FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 60;
  auto s = fuzz::make_cve_synth_surface({.misplant_off_by_one = true});
  auto rep = fuzz::run_fuzz(*s, opts);
  ASSERT_FALSE(rep.failures.empty())
      << "oracles missed the mis-planted guard";
  for (const auto& f : rep.failures) {
    EXPECT_EQ(f.oracle, "probe-contract") << f.detail;
    EXPECT_LE(f.input.size(), f.original_size);
    auto v = s->execute(f.input);
    ASSERT_TRUE(v.failure.has_value()) << "shrunk repro no longer fails";
    EXPECT_EQ(v.failure->first, f.oracle);
  }
}

}  // namespace
}  // namespace kshot::cve
