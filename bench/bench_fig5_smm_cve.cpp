// Regenerates Figure 5 (§VI-C3): SMM-based live patching time for the same
// six CVEs, broken into key generation / switching / decryption /
// verification / application. Switching and keygen are fixed costs; the
// rest track patch size.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  bench::title("Figure 5 — SMM-based live patching time per CVE (us)");
  std::printf("%-16s %6s %8s %8s %8s %8s %8s %9s %9s\n", "CVE", "bytes",
              "Keygen", "Switch*", "Decrypt", "Verify", "Apply", "Total",
              "Modeled");
  bench::rule('-', 100);

  struct Row {
    std::string id;
    double keygen, sw, dec, ver, app;
  };
  std::vector<Row> rows;

  for (const std::string& id : cve::figure_case_ids()) {
    const auto& c = cve::find_case(id);
    auto tb = testbed::Testbed::boot(c, {.seed = 0xF15});
    if (!tb.is_ok()) {
      std::printf("%-16s boot failed\n", id.c_str());
      continue;
    }
    testbed::Testbed& t = **tb;

    const int n = 50;
    std::vector<double> kg, dec, ver, app, tot, modeled;
    double sw = 0;
    size_t bytes = 0;
    for (int i = 0; i < n; ++i) {
      auto rep = t.kshot().live_patch(c.id);
      if (!rep.is_ok() || !rep->success) break;
      kg.push_back(rep->smm.keygen_us);
      dec.push_back(rep->smm.decrypt_us);
      ver.push_back(rep->smm.verify_us);
      app.push_back(rep->smm.apply_us);
      tot.push_back(rep->smm.total_us);
      modeled.push_back(rep->smm.modeled_total_us);
      sw = rep->smm.switch_us;
      bytes = rep->stats.code_bytes;
      t.kshot().rollback();
      t.kshot().enclave().reset_mem_x_cursor();
    }
    if (kg.empty()) continue;
    Row r{id, bench::stats_of(kg).mean, sw, bench::stats_of(dec).mean,
          bench::stats_of(ver).mean, bench::stats_of(app).mean};
    std::printf("%-16s %6zu %8.2f %8.2f %8.2f %8.2f %8.2f %9.2f %9.2f\n",
                id.c_str(), bytes, r.keygen, r.sw, r.dec, r.ver, r.app,
                bench::stats_of(tot).mean, bench::stats_of(modeled).mean);
    rows.push_back(r);
  }

  bench::rule('-', 100);
  std::printf(
      "* switching time is the calibrated virtual-time model (paper: 12.9us "
      "entry + 21.7us resume per SMI, two SMIs per patch).\n");

  // Stacked bars over the size-dependent phases.
  double max_total = 1e-9;
  for (const auto& r : rows) {
    max_total = std::max(max_total, r.dec + r.ver + r.app);
  }
  std::printf("\nSize-dependent phases (d=decrypt, V=verify, a=apply):\n");
  for (const auto& r : rows) {
    const int width = 60;
    std::printf("%-16s |", r.id.c_str());
    for (int i = 0; i < static_cast<int>(r.dec / max_total * width); ++i)
      std::putchar('d');
    for (int i = 0; i < static_cast<int>(r.ver / max_total * width); ++i)
      std::putchar('V');
    for (int i = 0; i < static_cast<int>(r.app / max_total * width); ++i)
      std::putchar('a');
    std::printf("\n");
  }
  std::printf(
      "\nShape check: larger patches need more patching time while keygen "
      "and switching stay\nconstant across all patches — matching the "
      "paper's Figure 5.\n");
  return 0;
}
