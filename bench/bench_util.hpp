// Shared helpers for the benchmark binaries: repetition timing, humanized
// sizes, and aligned table printing. Each bench regenerates one table or
// figure from the paper's evaluation (see DESIGN.md's experiment index) and
// prints the paper's reported values alongside for shape comparison.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kshot::bench {

struct Stats {
  double mean = 0;
  double stddev = 0;  // population standard deviation
  double min = 0;
  double max = 0;
  double p50 = 0;  // nearest-rank percentiles
  double p95 = 0;
  double p99 = 0;
  int n = 0;
};

/// Nearest-rank percentile of a *sorted* sample vector.
inline double percentile_sorted(const std::vector<double>& sorted,
                                double pct) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

/// Aggregates externally collected samples: mean, stddev, min/max, and
/// p50/p95/p99.
inline Stats stats_of(std::vector<double> xs) {
  Stats s;
  s.n = static_cast<int>(xs.size());
  if (xs.empty()) return s;
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.p50 = percentile_sorted(xs, 50);
  s.p95 = percentile_sorted(xs, 95);
  s.p99 = percentile_sorted(xs, 99);
  return s;
}

/// Runs `fn` n times, returning stats over per-iteration wall time in us.
inline Stats time_us(int n, const std::function<void()>& fn) {
  std::vector<double> us;
  us.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    us.push_back(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  return stats_of(std::move(us));
}

inline std::string human_bytes(size_t n) {
  char buf[32];
  if (n >= (10ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%zuMB", n >> 20);
  } else if (n >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", double(n) / (1 << 20));
  } else if (n >= 1024) {
    std::snprintf(buf, sizeof(buf), "%zuKB", n >> 10);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", n);
  }
  return buf;
}

inline void rule(char c = '-', int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void title(const std::string& t) {
  rule('=');
  std::printf("%s\n", t.c_str());
  rule('=');
}

}  // namespace kshot::bench
