// Shared helpers for the benchmark binaries: repetition timing, humanized
// sizes, and aligned table printing. Each bench regenerates one table or
// figure from the paper's evaluation (see DESIGN.md's experiment index) and
// prints the paper's reported values alongside for shape comparison.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kshot::bench {

struct Stats {
  double mean = 0;
  double min = 0;
  double max = 0;
  int n = 0;
};

/// Runs `fn` n times, returning stats over per-iteration wall time in us.
inline Stats time_us(int n, const std::function<void()>& fn) {
  Stats s;
  s.n = n;
  s.min = 1e300;
  for (int i = 0; i < n; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    s.mean += us;
    s.min = std::min(s.min, us);
    s.max = std::max(s.max, us);
  }
  s.mean /= n;
  return s;
}

/// Aggregates externally collected samples.
inline Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  s.n = static_cast<int>(xs.size());
  if (xs.empty()) return s;
  s.min = 1e300;
  for (double x : xs) {
    s.mean += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean /= static_cast<double>(xs.size());
  return s;
}

inline std::string human_bytes(size_t n) {
  char buf[32];
  if (n >= (10ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%zuMB", n >> 20);
  } else if (n >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", double(n) / (1 << 20));
  } else if (n >= 1024) {
    std::snprintf(buf, sizeof(buf), "%zuKB", n >> 10);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", n);
  }
  return buf;
}

inline void rule(char c = '-', int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void title(const std::string& t) {
  rule('=');
  std::printf("%s\n", t.c_str());
  rule('=');
}

}  // namespace kshot::bench
