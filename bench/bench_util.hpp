// Shared helpers for the benchmark binaries: repetition timing, humanized
// sizes, and aligned table printing. Each bench regenerates one table or
// figure from the paper's evaluation (see DESIGN.md's experiment index) and
// prints the paper's reported values alongside for shape comparison.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace kshot::bench {

// The percentile/stddev math lives in common/stats.hpp so every bench and
// the fleet report share one nearest-rank implementation; these aliases
// keep the existing bench binaries source-compatible.
using Stats = kshot::SampleStats;
using kshot::percentile_sorted;
using kshot::stats_of;

/// Runs `fn` n times, returning stats over per-iteration wall time in us.
inline Stats time_us(int n, const std::function<void()>& fn) {
  std::vector<double> us;
  us.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    us.push_back(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  return stats_of(std::move(us));
}

inline std::string human_bytes(size_t n) {
  char buf[32];
  if (n >= (10ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%zuMB", n >> 20);
  } else if (n >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", double(n) / (1 << 20));
  } else if (n >= 1024) {
    std::snprintf(buf, sizeof(buf), "%zuKB", n >> 10);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", n);
  }
  return buf;
}

inline void rule(char c = '-', int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void title(const std::string& t) {
  rule('=');
  std::printf("%s\n", t.c_str());
  rule('=');
}

}  // namespace kshot::bench
