// Regenerates §VI-C3's whole-system overhead experiment: Sysbench-style
// CPU-bound syscall workload + 1,000 live patches. The paper spread 1,000
// patches of each of the 6 Figure-4/5 CVEs over a long Sysbench run and
// reported < 3% end-user-visible overhead from the combined SGX preparation
// and SMM deployment times. We (1) measure baseline workload throughput,
// (2) really perform 1,000 live patches measuring per-patch SGX time (the
// OS keeps running but loses CPU) and SMM downtime (the OS is paused), and
// (3) report overhead at the paper's effective duty cycle of one patch per
// 300 ms of workload.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  bench::title(
      "Sysbench-style whole-system overhead, 1,000 live patches "
      "(paper §VI-C3: < 3%)");

  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {.seed = 0x5B, .workload_threads = 8});
  if (!tb.is_ok()) {
    std::printf("boot failed: %s\n", tb.status().to_string().c_str());
    return 1;
  }
  testbed::Testbed& t = **tb;
  const double ghz = t.machine().cost_model().ghz;

  // Phase 1: baseline throughput sample.
  u64 cyc0 = t.machine().cycles();
  t.scheduler().run(20'000, 64);
  u64 base_cycles = t.machine().cycles() - cyc0;
  u64 base_syscalls = t.scheduler().stats().syscalls_completed;
  double tp = static_cast<double>(base_syscalls) /
              static_cast<double>(base_cycles);

  // Phase 2: 1,000 real live patches, workload interleaved.
  std::vector<double> prep_us, pause_us;
  u64 patches = 0;
  for (int i = 0; i < 1000; ++i) {
    t.scheduler().run(20, 64);  // workload keeps running between patches
    auto rep = t.kshot().live_patch(c.id);
    if (!rep.is_ok() || !rep->success) {
      std::printf("patch %d failed\n", i);
      return 1;
    }
    ++patches;
    prep_us.push_back(rep->sgx.total_us());
    pause_us.push_back(rep->smm.modeled_total_us);
    t.kshot().rollback();
    t.kshot().enclave().reset_mem_x_cursor();
  }
  auto prep = bench::stats_of(prep_us);
  auto pause = bench::stats_of(pause_us);

  // Phase 3: overhead at the paper-scale duty cycle.
  const double window_ms = 300.0;  // one patch per 300 ms of Sysbench
  double per_patch_cost_us = prep.mean + pause.mean;
  double overhead =
      per_patch_cost_us / (window_ms * 1000.0 + per_patch_cost_us) * 100.0;
  // Pause-only overhead (pure end-user-visible stall share).
  double pause_overhead =
      pause.mean / (window_ms * 1000.0 + pause.mean) * 100.0;

  std::printf("%-44s %14.4f syscalls/Mcycle\n", "baseline throughput",
              tp * 1e6);
  std::printf("%-44s %14llu\n", "live patches applied (real)",
              static_cast<unsigned long long>(patches));
  std::printf("%-44s %14.1f us (runs concurrently with workload)\n",
              "mean SGX preparation per patch", prep.mean);
  std::printf("%-44s %14.1f us (OS paused; paper ~47.6-56.5us)\n",
              "mean SMM downtime per patch (modeled)", pause.mean);
  std::printf("%-44s %14.2f s\n", "modeled Sysbench run length",
              patches * window_ms / 1000.0);
  bench::rule('-', 80);
  std::printf(
      "Combined SGX+SMM overhead at 1 patch / %.0f ms:   %.3f%%   (paper: "
      "< 3%%)\n",
      window_ms, overhead);
  std::printf("Pause-only (end-user stall) share:            %.4f%%\n",
              pause_overhead);
  std::printf(
      "Workload health: %llu syscalls completed, %llu oopses during 1,000 "
      "patches.\n",
      static_cast<unsigned long long>(
          t.scheduler().stats().syscalls_completed),
      static_cast<unsigned long long>(t.scheduler().stats().oopses));

  bool pass = overhead < 3.0 && t.scheduler().stats().oopses == 0;
  std::printf("Result: %s\n", pass ? "within the paper's bound" : "OUT OF BOUND");
  (void)ghz;
  return pass ? 0 : 1;
}
