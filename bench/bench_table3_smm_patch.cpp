// Regenerates Table III (§VI-C2): breakdown of SMM operations — Data
// Decryption / Patch Verification / Patch Application / Total (the total
// includes the fixed key-generation and SMM-switching costs) — for patch
// payloads from 40 B to 10 MB. Both the real wall time of the handler's
// actual work and the calibrated virtual-time model are reported.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

struct PaperRow {
  size_t size;
  double decrypt, verify, apply, total;
};

// Table III as published (microseconds, n = 100).
const PaperRow kPaper[] = {
    {40, 0.04, 2.93, 0.06, 42.83},
    {400, 0.31, 6.32, 0.72, 47.15},
    {4 << 10, 1.27, 8.52, 6.92, 56.51},
    {40 << 10, 13.84, 33.85, 17.22, 104.71},
    {400 << 10, 133.30, 311.15, 396.45, 880.70},
    {10 << 20, 2'832.00, 5'973.00, 2'619.00, 11'464.00},
};

int reps_for(size_t size) {
  if (size <= (40 << 10)) return 100;
  if (size <= (400 << 10)) return 20;
  return 5;
}

}  // namespace

int main() {
  bench::title(
      "Table III — Breakdown of SMM operations (us; total includes keygen + "
      "SMM switching)");
  std::printf("%-10s %4s | %9s %9s %9s %9s | %10s | %s\n", "PatchSize", "n",
              "Decrypt", "Verify", "Apply", "Total", "Modeled",
              "paper(dec/ver/app/total)");
  bench::rule('-', 112);

  for (const PaperRow& row : kPaper) {
    cve::CveCase c = testbed::make_size_sweep_case(row.size);
    testbed::TestbedOptions opts;
    opts.layout = testbed::layout_for_patch_bytes(row.size);
    auto tb = testbed::Testbed::boot(c, opts);
    if (!tb.is_ok()) {
      std::printf("%-10s boot failed\n", bench::human_bytes(row.size).c_str());
      continue;
    }
    testbed::Testbed& t = **tb;

    int n = reps_for(row.size);
    std::vector<double> dec, ver, app, tot, modeled;
    size_t actual = 0;
    for (int i = 0; i < n; ++i) {
      auto rep = t.kshot().live_patch(c.id);
      if (!rep.is_ok() || !rep->success) break;
      dec.push_back(rep->smm.decrypt_us);
      ver.push_back(rep->smm.verify_us);
      app.push_back(rep->smm.apply_us);
      tot.push_back(rep->smm.total_us);
      modeled.push_back(rep->smm.modeled_total_us);
      actual = rep->stats.code_bytes;
      t.kshot().rollback();
      t.kshot().enclave().reset_mem_x_cursor();
    }
    if (dec.empty()) continue;
    std::printf(
        "%-10s %4d | %9.2f %9.2f %9.2f %9.2f | %10.2f | "
        "%.2f/%.2f/%.2f/%.2f\n",
        bench::human_bytes(actual).c_str(), static_cast<int>(dec.size()),
        bench::stats_of(dec).mean, bench::stats_of(ver).mean,
        bench::stats_of(app).mean, bench::stats_of(tot).mean,
        bench::stats_of(modeled).mean, row.decrypt, row.verify, row.apply,
        row.total);
  }
  bench::rule('-', 112);
  std::printf(
      "Shape check: verification (SHA-2) dominates the size-dependent cost; "
      "keygen+switching are a\nfixed ~74us (modeled) floor that dominates "
      "small patches — matching the paper's Table III.\n");
  return 0;
}
