// Regenerates Table V (§VI-D2): comparison of kernel live patching systems —
// granularity, patching time, trusted code base, and memory consumption —
// by running KUP-, KARMA- and kpatch-style patchers and KShot on the same
// simulated deployment.
#include <cstdio>

#include "baselines/karma_sim.hpp"
#include "baselines/kpatch_sim.hpp"
#include "baselines/kup_sim.hpp"
#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

std::string human(size_t b) { return bench::human_bytes(b); }

/// A case whose post body is no larger than its pre body, so the
/// instruction-level KARMA baseline can apply it in place.
cve::CveCase karma_fit_case() {
  cve::CveCase c;
  c.id = "KARMA-FIT";
  c.kernel = "sim-4.4";
  c.functions = {"karma_target"};
  c.types = "1";
  c.trap_code = 98;
  c.syscall_nr = 91;
  c.entry_function = "karma_target";
  c.exploit_args = {8192, 0, 0, 0, 0};
  c.benign_args = {55, 0, 0, 0, 0};
  std::string base = cve::base_kernel_source();
  c.pre_source = base + R"(
fn karma_target(a1, a2) {
  pad(64);
  if (a1 > 4096) {
    bug(98);
  }
  return a1 & 4095;
}
)";
  // The fix replaces the trap with a clamp and sheds padding, so the
  // replacement fits the original footprint.
  c.post_source = base + R"(
fn karma_target(a1, a2) {
  pad(8);
  if (a1 > 4096) {
    return 0 - 22;
  }
  return a1 & 4095;
}
)";
  return c;
}

}  // namespace

int main() {
  bench::title("Table V — Kernel live patching system comparison");
  std::printf("%-8s %-12s %14s %-22s %-14s %s\n", "System", "Granularity",
              "Time (us)", "TCB", "Memory", "Notes");
  bench::rule('-', 100);

  const char* id = "CVE-2014-0196";
  const auto& c = cve::find_case(id);
  const double ghz = 3.0;
  auto cycles_to_us = [&](u64 cy) {
    return static_cast<double>(cy) / (ghz * 1000.0);
  };

  // ---- KUP: whole-kernel replacement + checkpoint/restore -----------------
  {
    auto tb = testbed::Testbed::boot(c, {.seed = 5, .workload_threads = 8});
    testbed::Testbed& t = **tb;
    t.scheduler().run(200);
    baselines::KupSim kup(t.kernel(), t.scheduler());
    auto post = t.server().build_post_image(id, t.compile_options());
    auto rep = kup.apply(id, *post);
    std::printf("%-8s %-12s %14.1f %-22s %-14s %s\n", "KUP", "Kernel",
                cycles_to_us(rep->downtime_cycles),
                ("kernel+kexec (" + human(rep->tcb_bytes) + ")").c_str(),
                human(rep->memory_overhead_bytes).c_str(),
                rep->success ? "handles data-structure changes"
                             : rep->detail.c_str());
  }

  // ---- KARMA: instruction-level in place -----------------------------------
  {
    cve::CveCase kc = karma_fit_case();
    auto tb = testbed::Testbed::boot(kc, {.seed = 6});
    testbed::Testbed& t = **tb;
    baselines::KarmaSim karma(t.kernel(), t.scheduler());
    auto set = t.server().build_patchset(kc.id, t.kernel().os_info());
    auto rep = karma.apply(*set);
    std::printf("%-8s %-12s %14.1f %-22s %-14s %s\n", "KARMA", "Instruction",
                cycles_to_us(rep->downtime_cycles),
                ("kernel+module (" + human(rep->tcb_bytes) + ")").c_str(),
                human(rep->memory_overhead_bytes).c_str(),
                rep->success ? "fails on growing/Type 3 patches"
                             : rep->detail.c_str());
  }

  // ---- kpatch: function-level, OS-trusted ----------------------------------
  {
    auto tb = testbed::Testbed::boot(c, {.seed = 7});
    testbed::Testbed& t = **tb;
    baselines::KpatchSim kpatch(t.kernel(), t.scheduler());
    auto set = t.server().build_patchset(id, t.kernel().os_info());
    auto rep = kpatch.apply(*set);
    std::printf("%-8s %-12s %14.1f %-22s %-14s %s\n", "kpatch", "Function",
                cycles_to_us(rep->downtime_cycles),
                ("whole kernel (" + human(rep->tcb_bytes) + ")").c_str(),
                human(rep->memory_overhead_bytes).c_str(),
                rep->success ? "needs stop_machine + OS trust"
                             : rep->detail.c_str());
  }

  // ---- KShot -----------------------------------------------------------------
  {
    auto tb = testbed::Testbed::boot(c, {.seed = 8});
    testbed::Testbed& t = **tb;
    auto rep = t.kshot().live_patch(id);
    size_t reserved = t.kernel().layout().reserved_total();
    std::printf("%-8s %-12s %14.1f %-22s %-14s %s\n", "KShot", "Function",
                rep->smm.modeled_total_us,
                ("SMM+SGX only (" + human(t.kshot().tcb_bytes()) + ")")
                    .c_str(),
                (human(reserved) + " reserved").c_str(),
                rep->success ? "no OS trust, no checkpointing" : "FAILED");
  }

  bench::rule('-', 100);
  std::printf(
      "Paper's Table V shape: KUP seconds-scale + huge memory; KARMA <5us "
      "small patches, tiny memory,\nlimited applicability; kpatch "
      "function-level with whole-kernel TCB; KShot ~50us-scale downtime,\n"
      "18MB fixed reservation, TCB = SMM+SGX only. All orderings above must "
      "match.\n");
  return 0;
}
