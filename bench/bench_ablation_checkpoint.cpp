// Ablation A2 (§IV-B): the space/time tradeoff between hardware-assisted
// state saving (KShot: SMM save-state, zero checkpoint bytes) and software
// checkpoint/restore (KUP: bytes and time grow with the workload). Sweeps
// the number of live threads and reports both systems' downtime and memory.
#include <cstdio>

#include "baselines/kup_sim.hpp"
#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  bench::title(
      "Ablation — hardware state saving (KShot) vs checkpoint/restore (KUP) "
      "as workload grows");
  std::printf("%7s | %16s %14s | %16s %14s\n", "threads", "KShot down(us)",
              "KShot ckpt", "KUP down(us)", "KUP memory");
  bench::rule('-', 78);

  const char* id = "CVE-2014-0196";
  const auto& c = cve::find_case(id);
  const double ghz = 3.0;

  for (int threads : {1, 2, 4, 8, 16, 32}) {
    // KShot run.
    double kshot_us = 0;
    {
      auto tb = testbed::Testbed::boot(
          c, {.seed = 0xAB1, .workload_threads = threads});
      if (!tb.is_ok()) continue;
      testbed::Testbed& t = **tb;
      t.scheduler().run(static_cast<u64>(threads) * 40);
      auto rep = t.kshot().live_patch(id);
      if (rep.is_ok() && rep->success) kshot_us = rep->smm.modeled_total_us;
    }

    // KUP run on an identical deployment.
    double kup_us = 0;
    size_t kup_mem = 0;
    {
      auto tb = testbed::Testbed::boot(
          c, {.seed = 0xAB1, .workload_threads = threads});
      if (!tb.is_ok()) continue;
      testbed::Testbed& t = **tb;
      t.scheduler().run(static_cast<u64>(threads) * 40);
      baselines::KupSim kup(t.kernel(), t.scheduler());
      auto post = t.server().build_post_image(id, t.compile_options());
      if (post.is_ok()) {
        auto rep = kup.apply(id, *post);
        if (rep.is_ok() && rep->success) {
          kup_us = static_cast<double>(rep->downtime_cycles) / (ghz * 1000.0);
          kup_mem = rep->memory_overhead_bytes;
        }
      }
    }

    std::printf("%7d | %16.1f %14s | %16.1f %14s\n", threads, kshot_us, "0B",
                kup_us, bench::human_bytes(kup_mem).c_str());
  }
  bench::rule('-', 78);
  std::printf(
      "Shape check: KShot's downtime is flat (the hardware saves one CPU's "
      "state regardless of\nworkload) and it checkpoints nothing; KUP's "
      "downtime and memory grow with the thread count —\nthe tradeoff "
      "§IV-B describes.\n");
  return 0;
}
