// Resilience campaign: live-patches CVE-2014-0196 through a faulty channel
// across a fault type x rate grid and reports, per cell, the success rate,
// the retry effort (attempts and modeled backoff), and the invariant check —
// every failed run must leave the kernel byte-identical to its pre-patch
// snapshot. Runs are seeded; any cell can be replayed exactly.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

struct Snapshot {
  Bytes text;
  Bytes data;
};

Snapshot snapshot(testbed::Testbed& t) {
  const auto& lay = t.kernel().layout();
  Snapshot s;
  s.text.resize(t.kernel().image().text.size());
  (void)t.machine().mem().read(lay.text_base,
                               MutByteSpan(s.text.data(), s.text.size()),
                               machine::AccessMode::smm());
  s.data.resize(lay.data_max);
  (void)t.machine().mem().read(lay.data_base,
                               MutByteSpan(s.data.data(), s.data.size()),
                               machine::AccessMode::smm());
  return s;
}

bool identical(testbed::Testbed& t, const Snapshot& s) {
  Snapshot now = snapshot(t);
  return now.text == s.text && now.data == s.data;
}

}  // namespace

int main() {
  bench::title(
      "Fault campaign — retry effort and transactional invariant under a "
      "lossy/hostile channel (CVE-2014-0196, default retry policy)");
  std::printf("%9s %5s | %4s %7s | %8s %9s %11s | %9s\n", "fault", "rate",
              "runs", "success", "attempts", "aborts", "backoff(us)",
              "invariant");
  bench::rule('-', 80);

  const char* id = "CVE-2014-0196";
  const auto& c = cve::find_case(id);
  constexpr int kRunsPerCell = 10;
  const netsim::FaultType types[] = {
      netsim::FaultType::kDrop,      netsim::FaultType::kCorrupt,
      netsim::FaultType::kTruncate,  netsim::FaultType::kDuplicate,
      netsim::FaultType::kReorder,   netsim::FaultType::kDelay,
  };

  u64 run_counter = 0;
  for (netsim::FaultType type : types) {
    for (double rate : {0.1, 0.3, 0.5}) {
      testbed::TestbedOptions opts;
      opts.fault_plan = netsim::FaultPlan{};
      auto tb = testbed::Testbed::boot(c, opts);
      if (!tb.is_ok()) {
        std::printf("boot failed: %s\n", tb.status().to_string().c_str());
        return 1;
      }
      testbed::Testbed& t = **tb;
      Snapshot snap = snapshot(t);

      int successes = 0;
      std::vector<double> attempts, aborts, backoff_us;
      bool invariant_held = true;
      for (int r = 0; r < kRunsPerCell; ++r) {
        u64 seed = 0xBE7C4 + 1000003ull * run_counter++;
        t.fault_injector()->reset(netsim::FaultPlan::uniform(type, rate),
                                  seed);
        auto rep = t.kshot().live_patch(id);
        if (rep.is_ok()) {
          attempts.push_back(rep->resilience.fetch_attempts +
                             rep->resilience.apply_attempts);
          aborts.push_back(rep->resilience.session_aborts);
          backoff_us.push_back(rep->resilience.backoff_us);
        }
        if (rep.is_ok() && rep->success) {
          ++successes;
          t.fault_injector()->reset(netsim::FaultPlan{}, seed);
          auto rb = t.kshot().rollback();
          if (!rb.is_ok() || !rb->success) invariant_held = false;
        }
        if (!identical(t, snap)) invariant_held = false;
      }
      std::printf("%9s %5.2f | %4d %6d%% | %8.1f %9.1f %11.1f | %9s\n",
                  netsim::fault_type_name(type), rate, kRunsPerCell,
                  100 * successes / kRunsPerCell,
                  bench::stats_of(std::move(attempts)).mean,
                  bench::stats_of(std::move(aborts)).mean,
                  bench::stats_of(std::move(backoff_us)).mean,
                  invariant_held ? "held" : "VIOLATED");
      if (!invariant_held) return 1;
    }
  }
  return 0;
}
