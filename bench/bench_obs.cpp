// Observability overhead: what does it cost the hot paths to be traced?
// Measures the per-event cost of TraceRecorder (span/instant append under
// the mutex, single- and multi-threaded), the per-op cost of the metrics
// primitives (relaxed counter inc, log2 histogram observe), the Chrome
// trace-event export throughput, and — the number that actually matters —
// the end-to-end wall delta of a fully traced live_patch run vs an
// untraced one on the same seed.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cve/suite.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

constexpr int kOpsPerIter = 10000;

void bench_recorder_primitives() {
  bench::title("TraceRecorder primitives (per-event cost, mutexed append)");
  std::printf("%-34s %10s %10s %10s\n", "op", "mean ns", "p95 ns", "p99 ns");
  bench::rule();

  auto row = [](const char* name, const bench::Stats& s) {
    std::printf("%-34s %10.1f %10.1f %10.1f\n", name,
                s.mean * 1000.0 / kOpsPerIter, s.p95 * 1000.0 / kOpsPerIter,
                s.p99 * 1000.0 / kOpsPerIter);
  };

  obs::TraceRecorder rec;
  row("complete span (2 args)", bench::time_us(50, [&] {
        for (int i = 0; i < kOpsPerIter; ++i) {
          rec.complete("smm", "apply", 0, 1000, 4000, 1.0,
                       {{"entry", "n_tty_write"}, {"bytes", "96"}});
        }
        rec.clear();
      }));
  row("instant event (no args)", bench::time_us(50, [&] {
        for (int i = 0; i < kOpsPerIter; ++i) {
          rec.instant("kshot", "smi_raised", 0, 1000);
        }
        rec.clear();
      }));

  // Contended append: 4 threads emitting into one recorder, as a fleet with
  // a shared recorder would (per-target recorders avoid this by design).
  row("complete span, 4 threads", bench::time_us(20, [&] {
        std::vector<std::thread> ts;
        for (int t = 0; t < 4; ++t) {
          ts.emplace_back([&rec, t] {
            for (int i = 0; i < kOpsPerIter / 4; ++i) {
              rec.complete("netsim", "handle_request",
                           static_cast<u32>(t), 0, 0, 2.0);
            }
          });
        }
        for (auto& t : ts) t.join();
        rec.clear();
      }));
}

void bench_metrics_primitives() {
  std::printf("\n");
  bench::title("Metrics primitives (per-op cost)");
  std::printf("%-34s %10s %10s %10s\n", "op", "mean ns", "p95 ns", "p99 ns");
  bench::rule();

  auto row = [](const char* name, const bench::Stats& s) {
    std::printf("%-34s %10.1f %10.1f %10.1f\n", name,
                s.mean * 1000.0 / kOpsPerIter, s.p95 * 1000.0 / kOpsPerIter,
                s.p99 * 1000.0 / kOpsPerIter);
  };

  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("smm.patches_applied");
  obs::Histogram& h = reg.histogram("kshot.downtime_us");
  row("counter inc (resolved ref)", bench::time_us(50, [&] {
        for (int i = 0; i < kOpsPerIter; ++i) c.inc();
      }));
  row("counter inc, 4 threads", bench::time_us(20, [&] {
        std::vector<std::thread> ts;
        for (int t = 0; t < 4; ++t) {
          ts.emplace_back([&c] {
            for (int i = 0; i < kOpsPerIter / 4; ++i) c.inc();
          });
        }
        for (auto& t : ts) t.join();
      }));
  row("histogram observe", bench::time_us(50, [&] {
        for (int i = 0; i < kOpsPerIter; ++i) h.observe(double(i % 512));
      }));
  row("registry lookup + inc", bench::time_us(20, [&] {
        for (int i = 0; i < kOpsPerIter; ++i) {
          reg.counter("smm.patches_applied").inc();
        }
      }));
}

void bench_export() {
  std::printf("\n");
  bench::title("Chrome trace-event export throughput");

  for (size_t events : {1000ull, 10000ull, 100000ull}) {
    obs::TraceRecorder rec;
    for (size_t i = 0; i < events; ++i) {
      rec.complete("smm", i % 2 ? "decrypt" : "apply",
                   static_cast<u32>(i % 16), i * 100, i * 100 + 3000, 1.2,
                   {{"entry", "fn_" + std::to_string(i % 31)}});
    }
    auto evs = rec.snapshot();
    std::string js;
    auto s = bench::time_us(20, [&] { js = obs::to_chrome_trace(evs); });
    std::printf("  %6zu events -> %8s JSON: %8.0f us/export  (%.1f Mev/s)\n",
                events, bench::human_bytes(js.size()).c_str(), s.mean,
                double(events) / s.mean);
  }
}

void bench_end_to_end() {
  std::printf("\n");
  bench::title("End-to-end: traced vs untraced live_patch (CVE-2014-0196)");

  auto run = [](bool traced) {
    return bench::time_us(15, [traced] {
      obs::TraceRecorder trace;
      obs::MetricsRegistry metrics;
      testbed::TestbedOptions opts;
      opts.seed = 42;
      if (traced) {
        opts.trace = &trace;
        opts.metrics = &metrics;
      }
      auto tb = testbed::Testbed::boot(cve::find_case("CVE-2014-0196"),
                                       opts);
      if (!tb) std::abort();
      auto rep = (*tb)->kshot().live_patch("CVE-2014-0196");
      if (!rep || !rep->success) std::abort();
    });
  };

  auto off = run(false);
  auto on = run(true);
  std::printf("  untraced: %8.0f us/run (p95 %.0f)\n", off.mean, off.p95);
  std::printf("  traced:   %8.0f us/run (p95 %.0f)\n", on.mean, on.p95);
  std::printf("  overhead: %+7.1f%%  (boot + full pipeline, all emitters)\n",
              off.mean > 0 ? (on.mean / off.mean - 1.0) * 100.0 : 0.0);
}

}  // namespace

int main() {
  bench_recorder_primitives();
  bench_metrics_primitives();
  bench_export();
  bench_end_to_end();
  return 0;
}
