// Regenerates Figure 4 (§VI-C3): SGX-based patch preparation time for six
// representative CVE patches, broken into Fetching / Pre-processing /
// Passing, printed both as a table and as ASCII stacked bars.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  bench::title("Figure 4 — SGX-based patch preparation time per CVE (us)");
  std::printf("%-16s %6s %9s %12s %9s %10s %8s\n", "CVE", "bytes", "Fetch",
              "Pre-process", "Passing", "Total", "n");
  bench::rule();

  struct Row {
    std::string id;
    size_t bytes;
    double fetch, prep, pass;
  };
  std::vector<Row> rows;

  for (const std::string& id : cve::figure_case_ids()) {
    const auto& c = cve::find_case(id);
    auto tb = testbed::Testbed::boot(c, {.seed = 0xF16});
    if (!tb.is_ok()) {
      std::printf("%-16s boot failed\n", id.c_str());
      continue;
    }
    testbed::Testbed& t = **tb;

    const int n = 50;
    std::vector<double> fetch, prep, pass;
    size_t bytes = 0;
    for (int i = 0; i < n; ++i) {
      auto rep = t.kshot().live_patch(c.id);
      if (!rep.is_ok() || !rep->success) break;
      fetch.push_back(rep->sgx.fetch_us);
      prep.push_back(rep->sgx.preprocess_us);
      pass.push_back(rep->sgx.passing_us);
      bytes = rep->stats.code_bytes;
      t.kshot().rollback();
      t.kshot().enclave().reset_mem_x_cursor();
    }
    if (fetch.empty()) continue;
    Row r{id, bytes, bench::stats_of(fetch).mean, bench::stats_of(prep).mean,
          bench::stats_of(pass).mean};
    std::printf("%-16s %6zu %9.1f %12.1f %9.1f %10.1f %8d\n", id.c_str(),
                r.bytes, r.fetch, r.prep, r.pass, r.fetch + r.prep + r.pass,
                static_cast<int>(fetch.size()));
    rows.push_back(r);
  }

  // ASCII stacked bars (normalized to the largest total).
  bench::rule();
  double max_total = 1e-9;
  for (const auto& r : rows) {
    max_total = std::max(max_total, r.fetch + r.prep + r.pass);
  }
  std::printf("\nStacked profile (f=fetch, P=pre-process, w=passing):\n");
  for (const auto& r : rows) {
    const int width = 60;
    int nf = static_cast<int>(r.fetch / max_total * width);
    int np = static_cast<int>(r.prep / max_total * width);
    int nw = static_cast<int>(r.pass / max_total * width);
    std::printf("%-16s |", r.id.c_str());
    for (int i = 0; i < nf; ++i) std::putchar('f');
    for (int i = 0; i < np; ++i) std::putchar('P');
    for (int i = 0; i < nw; ++i) std::putchar('w');
    std::printf("\n");
  }
  std::printf(
      "\nShape check: bar height tracks patch size and passing is "
      "negligible, as in the paper's Figure 4.\nDifference: our modeled "
      "network fetch outweighs our (lighter) pre-processing — see "
      "EXPERIMENTS.md.\n");
  return 0;
}
