// Regenerates Table II (§VI-C1): breakdown of SGX-based patch preparation —
// Fetching / Pre-processing / Passing — for patch payloads from 40 B to
// 10 MB. Absolute numbers come from this machine's real crypto/copy work
// plus the modeled network link; the paper's i7 numbers are printed
// alongside so the linear-scaling shape can be compared directly.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

struct PaperRow {
  size_t size;
  double fetch, prep, pass, total;
};

// Table II as published (microseconds, n = 100).
const PaperRow kPaper[] = {
    {40, 54, 150, 9, 213},
    {400, 68, 850, 29, 947},
    {4 << 10, 200, 8'034, 51, 8'285},
    {40 << 10, 2'266, 82'611, 498, 85'375},
    {400 << 10, 16'707, 785'616, 4'985, 807'308},
    {10 << 20, 415'944, 19'991'979, 124'565, 20'532'488},
};

int reps_for(size_t size) {
  if (size <= (40 << 10)) return 100;
  if (size <= (400 << 10)) return 20;
  return 5;
}

}  // namespace

int main() {
  bench::title("Table II — Breakdown of SGX operations (us)");
  std::printf("%-10s %6s | %12s %14s %10s %12s | %s\n", "PatchSize", "n",
              "Fetching", "Pre-process", "Passing", "Total",
              "paper(fetch/prep/pass/total)");
  bench::rule('-', 110);

  for (const PaperRow& row : kPaper) {
    cve::CveCase c = testbed::make_size_sweep_case(row.size);
    testbed::TestbedOptions opts;
    opts.layout = testbed::layout_for_patch_bytes(row.size);
    auto tb = testbed::Testbed::boot(c, opts);
    if (!tb.is_ok()) {
      std::printf("%-10s boot failed: %s\n",
                  bench::human_bytes(row.size).c_str(),
                  tb.status().to_string().c_str());
      continue;
    }
    testbed::Testbed& t = **tb;

    int n = reps_for(row.size);
    std::vector<double> fetch, prep, pass;
    size_t actual_bytes = 0;
    for (int i = 0; i < n; ++i) {
      auto rep = t.kshot().live_patch(c.id);
      if (!rep.is_ok() || !rep->success) {
        std::printf("%-10s patch failed: %s\n",
                    bench::human_bytes(row.size).c_str(),
                    rep.is_ok() ? "smm rejected" :
                                  rep.status().to_string().c_str());
        break;
      }
      fetch.push_back(rep->sgx.fetch_us);
      prep.push_back(rep->sgx.preprocess_us);
      pass.push_back(rep->sgx.passing_us);
      actual_bytes = rep->stats.code_bytes;
      // Reset for the next iteration.
      t.kshot().rollback();
      t.kshot().enclave().reset_mem_x_cursor();
    }
    if (fetch.empty()) continue;
    auto f = bench::stats_of(fetch);
    auto p = bench::stats_of(prep);
    auto w = bench::stats_of(pass);
    std::printf(
        "%-10s %6d | %12.1f %14.1f %10.1f %12.1f | %.0f/%.0f/%.0f/%.0f\n",
        bench::human_bytes(actual_bytes).c_str(), f.n, f.mean, p.mean, w.mean,
        f.mean + p.mean + w.mean, row.fetch, row.prep, row.pass, row.total);
  }
  bench::rule('-', 110);
  std::printf(
      "Shape check: all three phases scale ~linearly with patch size and "
      "passing (a memcpy) is by far\nthe cheapest, matching Table II. "
      "Difference from the paper: their pre-processing dominated fetch;\n"
      "ours is lighter relative to the modeled network transfer, so fetch "
      "leads — the linear scaling and\nphase ordering trends are otherwise "
      "preserved (see EXPERIMENTS.md).\n");
  return 0;
}
