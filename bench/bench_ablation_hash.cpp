// Ablation A1 (§VI-C2): "the majority of the patch time comes from the
// patch verification process, which involves computing a SHA-2 hash. We
// could reduce this time by employing a simpler hashing algorithm such as
// SDBM." This bench quantifies that claim with google-benchmark sweeps over
// SHA-256, SDBM, FNV-1a and CRC-32 and projects the SMM verify-phase saving.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "crypto/simple_hash.hpp"

using namespace kshot;

namespace {

Bytes payload(size_t n) {
  Rng rng(n * 31 + 7);
  return rng.next_bytes(n);
}

void BM_Sha256(benchmark::State& state) {
  Bytes data = payload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}

void BM_Sdbm(benchmark::State& state) {
  Bytes data = payload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sdbm(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}

void BM_Fnv1a(benchmark::State& state) {
  Bytes data = payload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::fnv1a(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}

void BM_Crc32(benchmark::State& state) {
  Bytes data = payload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::crc32(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}

BENCHMARK(BM_Sha256)->Arg(40)->Arg(400)->Arg(4 << 10)->Arg(40 << 10)->Arg(
    400 << 10);
BENCHMARK(BM_Sdbm)->Arg(40)->Arg(400)->Arg(4 << 10)->Arg(40 << 10)->Arg(
    400 << 10);
BENCHMARK(BM_Fnv1a)->Arg(4 << 10)->Arg(400 << 10);
BENCHMARK(BM_Crc32)->Arg(4 << 10)->Arg(400 << 10);

double measure_us(size_t size, u64 (*h64)(ByteSpan), bool sha) {
  Bytes data = payload(size);
  auto t0 = std::chrono::steady_clock::now();
  const int n = size > (64 << 10) ? 20 : 200;
  for (int i = 0; i < n; ++i) {
    if (sha) {
      benchmark::DoNotOptimize(crypto::sha256(data));
    } else {
      benchmark::DoNotOptimize(h64(data));
    }
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         n;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\nProjected SMM verify phase, SHA-256 vs SDBM "
      "(paper suggests SDBM to cut verification time):\n");
  std::printf("%-10s %14s %14s %10s\n", "PatchSize", "SHA-256 (us)",
              "SDBM (us)", "speedup");
  for (size_t size : {size_t{40}, size_t{400}, size_t{4} << 10,
                      size_t{40} << 10, size_t{400} << 10}) {
    double sha = measure_us(size, nullptr, true);
    double sdbm = measure_us(size, crypto::sdbm, false);
    std::printf("%-10zu %14.3f %14.3f %9.1fx\n", size, sha, sdbm,
                sha / sdbm);
  }
  std::printf(
      "Tradeoff: SDBM is not collision-resistant — an attacker who can "
      "write mem_W could forge a\npackage, so the speedup costs the "
      "integrity guarantee (which is why KShot uses SHA-2).\n");
  return 0;
}
