// Fleet orchestration scaling curve: N targets sharing one PatchServer,
// rolled out in canary waves through a bounded worker pool. Reports, per
// cell, the outcome counts, the server build-cache hit rate (the compile
// pipeline must run once per fleet, not once per target), modeled downtime
// percentiles, and wall-clock time; then a jobs-speedup table at N=16.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "fleet/fleet.hpp"

using namespace kshot;

namespace {

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

fleet::FleetOptions base_options(u32 targets, u32 jobs, bool faulty) {
  fleet::FleetOptions o;
  o.cve_id = "CVE-2014-0196";
  o.targets = targets;
  o.jobs = jobs;
  o.base_seed = 0xF1EE7 + targets;  // distinct fleets, deterministic
  o.rollout.canary = std::min<u32>(4, targets);
  o.rollout.wave = 16;
  o.rollout.health_probes = 1;
  if (faulty) {
    netsim::FaultPlan plan;
    plan.rates.drop = 0.10;
    plan.rates.corrupt = 0.05;
    o.fault_plan = plan;
  }
  return o;
}

struct CellResult {
  fleet::FleetReport report;
  double boot_ms = 0;
  double campaign_ms = 0;
};

CellResult run_cell(const fleet::FleetOptions& opts) {
  CellResult cell;
  fleet::FleetController fc(opts);
  auto t0 = std::chrono::steady_clock::now();
  auto boot = fc.boot_fleet();
  cell.boot_ms = wall_ms(t0);
  if (!boot.is_ok()) {
    std::fprintf(stderr, "boot failed: %s\n", boot.to_string().c_str());
    std::exit(1);
  }
  t0 = std::chrono::steady_clock::now();
  auto rep = fc.run_campaign();
  cell.campaign_ms = wall_ms(t0);
  if (!rep.is_ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 rep.status().to_string().c_str());
    std::exit(1);
  }
  cell.report = *rep;
  return cell;
}

}  // namespace

int main() {
  bench::title(
      "Fleet rollout scaling — N targets, one shared PatchServer with "
      "single-flight build cache, canary waves (CVE-2014-0196)");
  std::printf("%4s %-6s %4s | %7s %6s %6s | %16s %7s | %9s %9s | %8s %11s\n",
              "N", "chan", "jobs", "applied", "failed", "rolled",
              "patchset m/h", "hit%", "p50 down", "p95 down", "boot ms",
              "campaign ms");
  bench::rule('-', 112);

  for (u32 n : {1u, 4u, 16u, 64u}) {
    for (bool faulty : {false, true}) {
      CellResult cell = run_cell(base_options(n, /*jobs=*/4, faulty));
      const fleet::FleetReport& r = cell.report;
      char mh[24];
      std::snprintf(mh, sizeof(mh), "%llu/%llu",
                    static_cast<unsigned long long>(r.cache.patchset_misses),
                    static_cast<unsigned long long>(r.cache.patchset_hits));
      std::printf(
          "%4u %-6s %4u | %7u %6u %6u | %16s %6.1f%% | %9.1f %9.1f | %8.1f "
          "%11.1f\n",
          n, faulty ? "faulty" : "clean", 4u, r.applied, r.failed,
          r.rolled_back, mh, 100.0 * r.cache_hit_rate, r.downtime_us.p50,
          r.downtime_us.p95, cell.boot_ms, cell.campaign_ms);
    }
  }

  bench::rule();
  std::printf(
      "Concurrency speedup — 16 targets, one wave, clean channel, shared "
      "server.\nModeled makespan schedules each target's modeled e2e time "
      "onto the worker pool\n(deterministic; real wall clock depends on "
      "physical cores, this host has %u):\n",
      std::thread::hardware_concurrency());
  std::printf("%6s %12s %9s | %9s %11s %9s\n", "jobs", "makespan us",
              "speedup", "boot ms", "campaign ms", "wall x");
  double base_makespan = 0, base_wall = 0;
  int rc = 0;
  for (u32 jobs : {1u, 2u, 4u, 8u}) {
    fleet::FleetOptions o = base_options(16, jobs, /*faulty=*/false);
    o.rollout.canary = 16;  // single wave: expose the worker-pool scaling
    CellResult cell = run_cell(o);
    double makespan = fleet::modeled_makespan_us(cell.report, jobs);
    double wall = cell.boot_ms + cell.campaign_ms;
    if (jobs == 1) {
      base_makespan = makespan;
      base_wall = wall;
    }
    double speedup = base_makespan / makespan;
    std::printf("%6u %12.1f %8.2fx | %9.1f %11.1f %8.2fx\n", jobs, makespan,
                speedup, cell.boot_ms, cell.campaign_ms, base_wall / wall);
    if (cell.report.applied != 16) {
      std::printf("unexpected: %u/16 applied\n", cell.report.applied);
      rc = 1;
    }
    if (jobs == 4 && speedup < 2.0) {
      std::printf("unexpected: modeled speedup %.2fx < 2x at jobs=4\n",
                  speedup);
      rc = 1;
    }
  }
  std::printf(
      "\nCache invariant: every cell above compiles the patch set once per "
      "fleet — (N-1)/N hit rate on the first fetch wave, higher with "
      "retries.\n");
  return rc;
}
