// Regenerates Table I + RQ1 (§VI-A/§VI-B): the 30-CVE benchmark suite (plus
// CVE-2014-4608). For each case: verify the exploit fires on the vulnerable
// kernel, live-patch through the full SGX+SMM pipeline, verify the exploit
// is dead and benign behaviour is preserved, and print the Table I row
// augmented with measured patch bytes and SMM downtime.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  bench::title(
      "Table I / RQ1 — 30 indicative kernel CVEs (+ CVE-2014-4608), live "
      "patched by KShot");
  std::printf("%-16s %-7s %4s %-5s %2s %9s %10s %11s %s\n", "CVE Number",
              "Kernel", "LoC", "Type", "Fn", "PatchB", "SMM us", "Downtime",
              "Result");
  bench::rule();

  int ok = 0, fail = 0;
  std::vector<double> patch_bytes, downtime_us;

  for (const auto& c : cve::all_cases()) {
    auto tb = testbed::Testbed::boot(c, {.seed = 0xBE7C4});
    if (!tb.is_ok()) {
      std::printf("%-16s boot failed: %s\n", c.id.c_str(),
                  tb.status().to_string().c_str());
      ++fail;
      continue;
    }
    testbed::Testbed& t = **tb;

    auto pre_exploit = t.run_exploit();
    bool exploit_fired = pre_exploit.is_ok() && pre_exploit->oops;
    auto benign_before = t.run_benign();

    auto report = t.kshot().live_patch(c.id);
    bool patched = report.is_ok() && report->success;

    bool exploit_dead = false, benign_same = false;
    if (patched) {
      auto post_exploit = t.run_exploit();
      exploit_dead = post_exploit.is_ok() && !post_exploit->oops;
      auto benign_after = t.run_benign();
      benign_same = benign_before.is_ok() && benign_after.is_ok() &&
                    benign_before->value == benign_after->value &&
                    !benign_after->oops;
    }

    bool success = exploit_fired && patched && exploit_dead && benign_same;
    (success ? ok : fail)++;
    if (patched) {
      patch_bytes.push_back(report->stats.code_bytes);
      downtime_us.push_back(report->smm.modeled_total_us);
    }

    std::printf("%-16s %-7s %4d %-5s %2u %9u %10.1f %9.1fus %s\n",
                c.id.c_str(), c.kernel.c_str(), c.patch_loc, c.types.c_str(),
                patched ? report->stats.functions : 0,
                patched ? report->stats.code_bytes : 0,
                patched ? report->smm.total_us : 0.0,
                patched ? report->smm.modeled_total_us : 0.0,
                success ? "OK" : "FAIL");
  }

  bench::rule();
  auto bytes = bench::stats_of(std::move(patch_bytes));
  auto down = bench::stats_of(std::move(downtime_us));
  std::printf(
      "%d/%zu patches applied correctly (paper: 30/30). Patch bytes mean "
      "%.0f (p95 %.0f); modeled downtime mean %.1f us, p50 %.1f, p95 %.1f, "
      "p99 %.1f (paper: ~50us for ~1KB).\n",
      ok, cve::all_cases().size(), bytes.mean, bytes.p95, down.mean, down.p50,
      down.p95, down.p99);
  return fail == 0 ? 0 : 1;
}
