// Regenerates Table IV (§VI-D1): comparison with general binary patching
// approaches. The qualitative columns are backed by live probes where our
// simulation can demonstrate them: the OS-trust column is *measured* by
// running the reversion rootkit against kpatch (fails) and KShot (survives).
#include <cstdio>

#include "attacks/rootkits.hpp"
#include "baselines/kpatch_sim.hpp"
#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

namespace {

/// Probe: does a kernel-resident reversion rootkit defeat the mechanism?
/// Returns true if the exploit is dead at the end (mechanism survived).
bool probe_kshot_survives_rootkit() {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {.seed = 1});
  if (!tb.is_ok()) return false;
  testbed::Testbed& t = **tb;
  t.kernel().insmod(std::make_shared<attacks::ReversionRootkit>(
      t.pre_image()));
  if (!t.kshot().live_patch(c.id).is_ok()) return false;
  t.scheduler().run(5);
  // Periodic introspection is part of the deployment.
  t.kshot().introspect();
  auto exploit = t.run_exploit();
  return exploit.is_ok() && !exploit->oops;
}

bool probe_kpatch_survives_rootkit() {
  const auto& c = cve::find_case("CVE-2014-0196");
  auto tb = testbed::Testbed::boot(c, {.seed = 2});
  if (!tb.is_ok()) return false;
  testbed::Testbed& t = **tb;
  t.kernel().insmod(std::make_shared<attacks::ReversionRootkit>(
      t.pre_image()));
  baselines::KpatchSim kpatch(t.kernel(), t.scheduler());
  auto set = t.server().build_patchset(c.id, t.kernel().os_info());
  if (!set.is_ok()) return false;
  auto rep = kpatch.apply(*set);
  if (!rep.is_ok() || !rep->success) return false;
  t.scheduler().run(5);
  auto exploit = t.run_exploit();
  return exploit.is_ok() && !exploit->oops;
}

}  // namespace

int main() {
  bool kshot_survives = probe_kshot_survives_rootkit();
  bool kpatch_survives = probe_kpatch_survives_rootkit();

  bench::title("Table IV — General patching system comparison");
  std::printf("%-12s %-10s %-16s %-22s %-18s\n", "System", "Level",
              "Runtime memory", "State handling", "Trusts OS kernel?");
  bench::rule('-', 84);
  std::printf("%-12s %-10s %-16s %-22s %-18s\n", "Dyninst", "binary file",
              "no", "n/a (offline)", "yes");
  std::printf("%-12s %-10s %-16s %-22s %-18s\n", "EEL", "binary file", "no",
              "n/a (offline)", "yes");
  std::printf("%-12s %-10s %-16s %-22s %-18s\n", "Libcare", "user process",
              "yes", "per-process hooks", "yes");
  std::printf("%-12s %-10s %-16s %-22s %-18s\n", "Kitsune", "user process",
              "yes", "developer annotations", "yes");
  std::printf("%-12s %-10s %-16s %-22s %-18s\n", "PROTEOS", "OS components",
              "yes", "annotated safe points", "yes");
  std::printf("%-12s %-10s %-16s %-22s %-18s\n", "kpatch", "kernel", "yes",
              "stop_machine+checks",
              kpatch_survives ? "yes (probe: survived?!)"
                              : "yes (probe: rootkit wins)");
  std::printf("%-12s %-10s %-16s %-22s %-18s\n", "KShot", "kernel", "yes",
              "hardware pause (SMM)",
              kshot_survives ? "NO (probe: survives rootkit)"
                             : "NO (probe FAILED)");
  bench::rule('-', 84);
  std::printf(
      "Live probes: a kernel reversion rootkit defeats kpatch (%s) but not "
      "KShot (%s),\nreproducing the paper's claim that only KShot needs no "
      "trust in the target kernel.\n",
      kpatch_survives ? "UNEXPECTEDLY survived" : "reverted as expected",
      kshot_survives ? "patch persists" : "UNEXPECTED failure");
  return (kshot_survives && !kpatch_survives) ? 0 : 1;
}
