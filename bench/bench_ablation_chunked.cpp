// Ablation A3: single-shot vs streaming (chunked) staging. The paper claims
// even a 40 MB patch completes in under a second with an 18 MB reservation —
// only possible if the package crosses mem_W in pieces. This bench measures
// the cost of chunking (extra SMIs, per-chunk MACs) against the single-shot
// path, and demonstrates a patch bigger than mem_W that only the chunked
// path can deliver.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/testbed.hpp"

using namespace kshot;

int main() {
  bench::title(
      "Ablation — single-shot vs chunked staging (paper: 40MB patch < 1s "
      "with an 18MB reservation)");
  std::printf("%-10s %-12s %7s %14s %14s %12s\n", "PatchSize", "mode",
              "chunks", "SMM down (us)", "wall total(us)", "result");
  bench::rule('-', 84);

  for (size_t size : {size_t{64} << 10, size_t{1} << 20, size_t{4} << 20}) {
    cve::CveCase c = testbed::make_size_sweep_case(size);
    for (int mode = 0; mode < 2; ++mode) {
      testbed::TestbedOptions opts;
      opts.layout = testbed::layout_for_patch_bytes(size);
      auto tb = testbed::Testbed::boot(c, opts);
      if (!tb.is_ok()) continue;
      testbed::Testbed& t = **tb;

      auto t0 = std::chrono::steady_clock::now();
      auto rep = mode == 0
                     ? t.kshot().live_patch(c.id)
                     : t.kshot().live_patch_chunked(c.id, 512 << 10);
      double wall = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      u64 chunks = t.machine().smi_count() > 1
                       ? t.machine().smi_count() - 1
                       : 0;
      std::printf("%-10s %-12s %7llu %14.1f %14.1f %12s\n",
                  bench::human_bytes(size).c_str(),
                  mode == 0 ? "single-shot" : "chunked",
                  static_cast<unsigned long long>(chunks),
                  rep.is_ok() ? rep->smm.modeled_total_us : 0.0, wall,
                  rep.is_ok() && rep->success ? "ok" : "failed");
    }
  }

  // The case only chunking can handle: package > mem_W.
  {
    size_t size = 8 << 20;
    cve::CveCase c = testbed::make_size_sweep_case(size);
    testbed::TestbedOptions opts;
    opts.layout = kernel::MemoryLayout::for_size_sweep();
    opts.layout.mem_w_size = (4 << 20) - opts.layout.mem_rw_size;

    auto tb1 = testbed::Testbed::boot(c, opts);
    auto single = (*tb1)->kshot().live_patch(c.id);
    auto tb2 = testbed::Testbed::boot(c, opts);
    auto t0 = std::chrono::steady_clock::now();
    auto chunked = (*tb2)->kshot().live_patch_chunked(c.id, 1 << 20);
    double wall = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    std::printf("%-10s %-12s %7s %14s %14s %12s\n", "8MB(>memW)",
                "single-shot", "-", "-", "-",
                single.is_ok() && single->success ? "UNEXPECTED ok"
                                                  : "refused (ok)");
    std::printf("%-10s %-12s %7d %14.1f %14.1f %12s\n", "8MB(>memW)",
                "chunked", 9,
                chunked.is_ok() ? chunked->smm.modeled_total_us : 0.0, wall,
                chunked.is_ok() && chunked->success ? "ok" : "failed");
  }
  bench::rule('-', 84);
  std::printf(
      "Tradeoff: chunking adds one SMI (~34.6us modeled) plus one MAC per "
      "chunk, buying the ability\nto deliver patches larger than the "
      "staging window — the paper's large-patch claim.\n");
  return 0;
}
